"""Deterministic interleaving control and bounded schedule exploration.

:class:`ScheduleRun` executes a set of :class:`~repro.check.program.TxnProgram`
under an explicit interleaving controller: ``step(i)`` advances program
``i`` by exactly one operation — lock demands planned through the real
protocol, requests submitted to the real lock manager with ``wait=True``
— and suspends it if a request must wait.  Deadlocks closed by a blocking
step are resolved immediately, youngest-victim (``start_ts``), through
the same :class:`~repro.locking.deadlock.DeadlockDetector` the rest of
the library uses.  Every run records

* the full :class:`~repro.locking.trace.LockTrace` narrative,
* the data-operation log (:class:`~repro.check.oracle.DataOp`),
* per-step invariant violations (:func:`repro.verify.audit_step`),
* deadlock victims and final transaction outcomes,

which together are exactly what the serializability oracle consumes.

:class:`Explorer` performs stateless model checking over the choice tree:
depth-first enumeration with full replay per prefix (the library is
deterministic, so replaying a prefix always reproduces the same state),
pruned DPOR-style with sleep sets — a sibling choice whose footprint is
*independent* of the step just taken need not be explored again in the
subtree, because the two orders commute.  Footprints are the full planned
lock sets (downward propagation included — two demands on different
assemblies still conflict at a shared part's entry point) plus the data
read/write sets.  For workloads too large to exhaust, seeded random walks
sample the same tree reproducibly.
"""

from __future__ import annotations

import itertools
import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import CheckError
from repro.locking.modes import compatible, op_classes_commute
from repro.locking.trace import LockTrace
from repro.check.oracle import DataOp
from repro.check.program import Abort, Commit, _normalize_demand
from repro.verify import audit_step

#: Invariant rules checked after every scheduler step by default.  The
#: entry-point visibility obligation is deliberately *not* in here: it is
#: an obligation only of protocols that claim implicit reference cover,
#: so the explorer adds it per protocol (see repro.check.differential).
DEFAULT_STEP_RULES = ("compatibility", "waiting-consistency")


class _Slot:
    """Execution state of one program inside a run."""

    __slots__ = (
        "program",
        "txn",
        "op_index",
        "current_op",
        "pending_demands",
        "pending_steps",
        "waiting_request",
        "outcome",
    )

    def __init__(self, program, txn):
        self.program = program
        self.txn = txn
        self.op_index = 0
        self.current_op = None
        self.pending_demands: List[tuple] = []
        self.pending_steps: List = []
        self.waiting_request = None
        self.outcome: Optional[str] = None

    @property
    def mid_operation(self) -> bool:
        return (
            self.current_op is not None
            or bool(self.pending_steps)
            or bool(self.pending_demands)
        )


class ScheduleRun:
    """One controlled execution of a multi-transaction workload."""

    def __init__(
        self,
        stack,
        programs,
        check_rules: Sequence[str] = DEFAULT_STEP_RULES,
        checks: Sequence[Callable] = (),
        max_steps: int = 500,
    ):
        self.stack = stack
        self.protocol = stack.protocol
        self.manager = stack.manager
        self.check_rules = tuple(check_rules)
        self.extra_checks = tuple(checks)
        self.max_steps = max_steps
        # Deterministic youngest-victim selection: programs are begun in
        # list order, so start_ts order equals program order in every
        # replay of this workload.
        self.manager.set_age_of(lambda txn: getattr(txn, "start_ts", 0))
        self.trace = LockTrace.attach(self.manager)
        self.data_ops: List[DataOp] = []
        self._data_seq = itertools.count(1)
        self.choices: List[int] = []
        self.violations: List[tuple] = []
        self._violation_keys = set()
        self.deadlocks: List[tuple] = []
        self.step_count = 0
        self.slots: List[_Slot] = []
        for program in programs:
            txn = stack.txns.begin(
                principal=program.principal, long=program.long, name=program.name
            )
            self.slots.append(_Slot(program, txn))
        self._by_txn = {slot.txn: slot for slot in self.slots}

    # -- bookkeeping -----------------------------------------------------------

    def record_data(self, txn, kind: str, resource):
        self.data_ops.append(
            DataOp(next(self._data_seq), txn.name, kind, tuple(resource))
        )

    def close(self):
        """Detach the trace wrapper (runs own throwaway stacks otherwise)."""
        self.trace.detach()

    # -- scheduling queries ----------------------------------------------------

    @property
    def finished(self) -> bool:
        return all(slot.outcome is not None for slot in self.slots)

    def enabled(self) -> List[int]:
        """Indices of programs that can take a step right now."""
        out = []
        for index, slot in enumerate(self.slots):
            if slot.outcome is not None:
                continue
            request = slot.waiting_request
            if request is not None and not request.granted:
                continue
            out.append(index)
        return out

    def outcomes(self) -> Dict[str, str]:
        return {slot.program.name: slot.outcome for slot in self.slots}

    # -- stepping --------------------------------------------------------------

    def step(self, index: int) -> int:
        """Advance program ``index`` by one operation (or until it blocks).

        Returns the step's position in the schedule.  Stepping a finished
        or blocked program raises :class:`~repro.errors.CheckError` — the
        explorer only offers enabled choices.
        """
        slot = self.slots[index]
        if slot.outcome is not None:
            raise CheckError("%s already finished" % slot.program.name)
        request = slot.waiting_request
        if request is not None:
            if not request.granted:
                raise CheckError("%s is blocked" % slot.program.name)
            # The waiting head of the plan was granted while suspended.
            slot.waiting_request = None
            if slot.pending_steps:
                slot.pending_steps.pop(0)
        if self.step_count >= self.max_steps:
            raise CheckError("schedule exceeded max_steps=%d" % self.max_steps)
        position = self.step_count
        self.step_count += 1
        self.choices.append(index)
        try:
            self._advance(slot)
        except CheckError:
            raise
        except Exception as exc:
            # A data/protocol/authorization failure aborts the transaction;
            # the schedule keeps going — aborts are an outcome, not an
            # explorer error.
            self._abort(slot, "failed:%s" % type(exc).__name__)
        self._run_checks(position)
        return position

    def run(self, choices: Optional[Sequence[int]] = None) -> "ScheduleRun":
        """Drive the schedule to completion.

        With ``choices`` the given prefix is replayed first; afterwards
        (and without ``choices``) the lowest enabled index is stepped —
        a deterministic round-robin-free completion useful for tests.
        """
        for index in choices or ():
            self.step(index)
        while not self.finished:
            enabled = self.enabled()
            if not enabled:
                raise CheckError(
                    "schedule stuck: no enabled transaction "
                    "(outcomes=%r)" % self.outcomes()
                )
            self.step(enabled[0])
        return self

    # -- internals -------------------------------------------------------------

    def _advance(self, slot: _Slot):
        txn = slot.txn
        while True:
            if slot.pending_steps:
                planned = slot.pending_steps[0]
                request = self.manager.acquire(
                    txn, planned.resource, planned.mode, long=txn.long, wait=True
                )
                self.protocol.locks_requested += 1
                if request.granted:
                    slot.pending_steps.pop(0)
                    continue
                slot.waiting_request = request
                self._resolve_deadlocks()
                if slot.outcome is not None:
                    return  # this transaction was the victim
                request = slot.waiting_request
                if request is None:
                    continue
                if request.granted:
                    slot.waiting_request = None
                    slot.pending_steps.pop(0)
                    continue
                return  # genuinely blocked; step ends mid-operation
            if slot.pending_demands:
                resource, mode, via = slot.pending_demands.pop(0)
                plan = self.protocol.plan_request(txn, resource, mode, via=via)
                self.protocol.demands += 1
                slot.pending_steps = list(plan)
                continue
            if slot.current_op is not None:
                op = slot.current_op
                slot.current_op = None
                op.apply(self, txn)
                return  # one operation completed: end of quantum
            if slot.op_index >= len(slot.program.ops):
                self.stack.txns.commit(txn)
                slot.outcome = "committed"
                return
            op = slot.program.ops[slot.op_index]
            slot.op_index += 1
            if isinstance(op, Commit):
                self.stack.txns.commit(txn)
                slot.outcome = "committed"
                return
            if isinstance(op, Abort):
                self._abort(slot, "aborted")
                return
            slot.current_op = op
            slot.pending_demands = [
                _normalize_demand(demand) for demand in op.demands(self, txn)
            ]

    def _resolve_deadlocks(self):
        """Break every waits-for cycle the blocking step just closed."""
        while True:
            cycle = self.manager.detect_deadlock()
            if cycle is None:
                return
            victim = self.manager.detector.pick_victim(cycle)
            names = tuple(getattr(txn, "name", repr(txn)) for txn in cycle)
            self.deadlocks.append(
                (self.step_count - 1, getattr(victim, "name", repr(victim)), names)
            )
            victim_slot = self._by_txn.get(victim)
            if victim_slot is None:
                raise CheckError("deadlock victim %r is not scheduled" % (victim,))
            self._abort(victim_slot, "deadlock-victim")

    def _abort(self, slot: _Slot, outcome: str):
        for request in self.manager.table.waiting_requests_of(slot.txn):
            self.manager.cancel(request)
        # Bounded retry: an injected fault can raise *during* abort (an
        # undo closure, the lock release).  TransactionManager.abort is
        # re-entrant — each retry resumes cleanup where the previous
        # attempt stopped — so a couple of retries absorb any bounded
        # number of faults along the abort path without leaking locks.
        for attempt in range(3):
            try:
                self.stack.txns.abort(slot.txn)
                break
            except Exception:
                if attempt == 2:
                    raise
        slot.outcome = outcome
        slot.waiting_request = None
        slot.pending_steps = []
        slot.pending_demands = []
        slot.current_op = None

    def _run_checks(self, position: int):
        if not self.check_rules and not self.extra_checks:
            return
        # Obligations hold at operation boundaries: a transaction
        # suspended mid-plan (root-to-leaf acquisition under way) has not
        # yet established the locks the rules oblige it to hold.
        busy = {
            slot.txn for slot in self.slots if slot.mid_operation
        }
        found = []
        if self.check_rules:
            found.extend(audit_step(self.protocol, rules=self.check_rules))
        for check in self.extra_checks:
            found.extend(check(self.protocol))
        for violation in found:
            if violation.txn in busy:
                continue
            key = (
                violation.rule,
                str(violation.txn),
                violation.resource,
                violation.detail,
            )
            if key in self._violation_keys:
                continue
            self._violation_keys.add(key)
            self.violations.append(
                (
                    position,
                    violation.rule,
                    getattr(violation.txn, "name", str(violation.txn)),
                    violation.resource,
                    violation.detail,
                )
            )

    # -- footprints (independence pruning) -------------------------------------

    def footprint(self, index: int) -> List[tuple]:
        """Predicted effect set of the *next* step of program ``index``.

        Entries are ``("lock", resource, mode)``, ``("unlock", resource,
        mode)`` or ``("data", resource, "r"|"w")``.  Lock entries come
        from full protocol plans, so downward-propagation locks onto
        shared entry points are part of the footprint — essential for
        soundness of the pruning (two demands on disjoint containers may
        still collide on common data).
        """
        slot = self.slots[index]
        txn = slot.txn
        if slot.outcome is not None:
            return []
        footprint: List[tuple] = []
        if slot.mid_operation:
            for planned in slot.pending_steps:
                footprint.append(("lock", planned.resource, planned.mode))
            for resource, mode, via in slot.pending_demands:
                footprint.extend(self._demand_footprint(txn, resource, mode, via))
            if slot.current_op is not None:
                footprint.extend(self._op_data(slot.current_op, txn))
            return footprint
        if slot.op_index >= len(slot.program.ops):
            return self._release_footprint(txn)
        op = slot.program.ops[slot.op_index]
        if isinstance(op, Commit):
            return self._release_footprint(txn)
        if isinstance(op, Abort):
            footprint = self._release_footprint(txn)
            for data_op in self.data_ops:
                if data_op.txn == slot.program.name and data_op.kind == "w":
                    footprint.append(("data", data_op.resource, "w"))
            return footprint
        try:
            demands = [_normalize_demand(d) for d in op.demands(self, txn)]
        except Exception:
            demands = []
        for resource, mode, via in demands:
            footprint.extend(self._demand_footprint(txn, resource, mode, via))
        footprint.extend(self._op_data(op, txn))
        return footprint

    def _demand_footprint(self, txn, resource, mode, via):
        try:
            plan = self.protocol.plan_request(txn, resource, mode, via=via)
        except Exception:
            return [("lock", tuple(resource), mode)]
        return [("lock", step.resource, step.mode) for step in plan]

    def _op_data(self, op, txn):
        try:
            return [
                ("data", tuple(resource), kind)
                for resource, kind in op.data_footprint(self, txn)
            ]
        except Exception:
            return []

    def _release_footprint(self, txn):
        return [
            ("unlock", resource, mode)
            for resource, mode in self.manager.locks_of(txn).items()
        ]


def _lockish_conflict(kind_a, mode_a, kind_b, mode_b) -> bool:
    if kind_a == "unlock" and kind_b == "unlock":
        return False
    return not compatible(mode_a, mode_b)


def independent(footprint_a, footprint_b) -> bool:
    """Do two step footprints commute?

    Data accesses conflict when their resources overlap hierarchically
    (one a prefix of the other) and at least one writes.  Lock actions
    conflict only on the *same* resource with incompatible modes (the
    lock table treats resources as opaque; hierarchy is the protocols'
    business and already expanded into the plans).  A data access and a
    lock action always commute — neither reads the other's state.
    """
    for kind_a, resource_a, extra_a in footprint_a:
        for kind_b, resource_b, extra_b in footprint_b:
            if kind_a == "data" and kind_b == "data":
                # same relation as the oracle's precedence edges: r/r and
                # same-class commuting updates (si/si, ap/ap, inc/inc)
                # never order each other
                if op_classes_commute(extra_a, extra_b):
                    continue
                shorter = min(len(resource_a), len(resource_b))
                if resource_a[:shorter] == resource_b[:shorter]:
                    return False
            elif kind_a != "data" and kind_b != "data":
                if resource_a != resource_b:
                    continue
                if _lockish_conflict(kind_a, extra_a, kind_b, extra_b):
                    return False
    return True


class ScheduleResult:
    """Immutable record of one completed schedule."""

    __slots__ = (
        "choices",
        "names",
        "outcomes",
        "data_ops",
        "violations",
        "deadlocks",
        "trace_events",
        "final_state",
        "step_count",
        "protocol",
    )

    def __init__(self, run: ScheduleRun):
        if not run.finished:
            raise CheckError("cannot snapshot an unfinished schedule")
        self.choices = tuple(run.choices)
        self.names = tuple(slot.program.name for slot in run.slots)
        self.outcomes = run.outcomes()
        self.data_ops = tuple(run.data_ops)
        self.violations = tuple(run.violations)
        self.deadlocks = tuple(run.deadlocks)
        self.trace_events = tuple(
            (
                event.action,
                getattr(event.txn, "name", str(event.txn)),
                event.resource,
                None if event.mode is None else str(event.mode),
                event.outcome,
            )
            for event in run.trace.events
        )
        self.final_state = state_digest(run.stack.database)
        self.step_count = run.step_count
        self.protocol = run.protocol.name

    def schedule_string(self) -> str:
        """The interleaving as a readable string, e.g. ``T1 T2 T2 T1``."""
        return " ".join(self.names[index] for index in self.choices)

    def fingerprint(self, include_trace: bool = False) -> tuple:
        """Stable identity for ablation comparison: same interleaving,
        same outcomes, same data-op log, same final database state.

        ``include_trace=True`` additionally folds in the full lock-trace
        narrative (every request/grant/wait/release event, in order) —
        the bit-identical standard the plan-compilation ablation is held
        to: a cached plan must produce the *same lock operations*, not
        just the same end state.
        """
        identity = (
            self.choices,
            tuple(sorted(self.outcomes.items())),
            tuple(
                (op.txn, op.kind, op.resource) for op in self.data_ops
            ),
            self.final_state,
        )
        if include_trace:
            identity = identity + (self.trace_events,)
        return identity

    def __repr__(self):
        return "ScheduleResult(%s: %s)" % (
            self.schedule_string(),
            ",".join("%s=%s" % item for item in sorted(self.outcomes.items())),
        )


def state_digest(database) -> str:
    """Canonical rendering of every relation's contents."""
    parts = []
    for relation in sorted(database.relations(), key=lambda rel: rel.name):
        for obj in sorted(relation, key=lambda o: str(o.key)):
            parts.append("%s/%s=%r" % (relation.name, obj.key, obj.root))
    return "; ".join(parts)


class Workload:
    """A named, repeatable workload: fresh (stack, programs) per build.

    ``builder(**variant)`` must construct a *fresh* database each call —
    replay-based exploration rebuilds the world for every prefix.
    """

    def __init__(self, name: str, builder: Callable, description: str = "",
                 expect_anomaly: bool = True, has_commuting_ops: bool = False):
        self.name = name
        self._builder = builder
        self.description = description
        #: Whether the section 3.2.2 anomaly is reachable on this workload
        #: under the unsafe DAG baseline (False for workloads whose demands
        #: never rely on implicit reference cover).
        self.expect_anomaly = expect_anomaly
        #: Whether any program issues commuting updates (set-insert,
        #: append, increment).  On such workloads the semantic-modes flag
        #: is *meant* to change the lock traces, so the flag-invisibility
        #: differential skips them.
        self.has_commuting_ops = has_commuting_ops

    def build(self, **variant):
        return self._builder(**variant)

    def __repr__(self):
        return "Workload(%s)" % self.name


class ExplorationReport:
    """The outcome of exploring one workload under one protocol."""

    def __init__(
        self,
        workload: str,
        protocol: str,
        results: List[ScheduleResult],
        replays: int = 0,
        pruned: int = 0,
        truncated: bool = False,
        exhaustive: bool = True,
    ):
        self.workload = workload
        self.protocol = protocol
        self.results = results
        self.replays = replays
        self.pruned = pruned
        self.truncated = truncated
        #: True when every maximal schedule (modulo commuting reorderings)
        #: was enumerated — the certification claim rests on this.
        self.exhaustive = exhaustive and not truncated

    def __len__(self):
        return len(self.results)

    def verdicts(self, visibility_obliged: bool = True):
        from repro.check.oracle import certify

        return [
            (result, certify(result, visibility_obliged=visibility_obliged))
            for result in self.results
        ]

    def counterexamples(self, visibility_obliged: bool = True):
        return [
            (result, verdict)
            for result, verdict in self.verdicts(visibility_obliged)
            if not verdict.ok
        ]

    def fingerprint(self, include_trace: bool = False) -> tuple:
        return tuple(
            sorted(result.fingerprint(include_trace) for result in self.results)
        )

    def summary(self) -> dict:
        bad = self.counterexamples()
        return {
            "workload": self.workload,
            "protocol": self.protocol,
            "schedules": len(self.results),
            "replays": self.replays,
            "pruned": self.pruned,
            "exhaustive": self.exhaustive,
            "counterexamples": len(bad),
        }


class Explorer:
    """Bounded exhaustive interleaving search with sleep-set pruning."""

    def __init__(
        self,
        workload: Workload,
        variant: Optional[dict] = None,
        check_rules: Sequence[str] = DEFAULT_STEP_RULES,
        max_schedules: int = 5000,
        max_steps: int = 300,
        prune: bool = True,
    ):
        self.workload = workload
        self.variant = dict(variant or {})
        self.check_rules = tuple(check_rules)
        self.max_schedules = max_schedules
        self.max_steps = max_steps
        self.prune = prune

    def fresh_run(self) -> ScheduleRun:
        stack, programs = self.workload.build(**self.variant)
        return ScheduleRun(
            stack,
            programs,
            check_rules=self.check_rules,
            max_steps=self.max_steps,
        )

    def _replay(self, prefix) -> ScheduleRun:
        run = self.fresh_run()
        for choice in prefix:
            run.step(choice)
        return run

    def explore(self) -> ExplorationReport:
        """Enumerate every inequivalent maximal schedule (DFS + sleep sets)."""
        results: List[ScheduleResult] = []
        stats = {"replays": 0, "pruned": 0, "truncated": False}
        protocol_name = [None]

        def dfs(prefix: tuple, sleep: frozenset):
            if len(results) >= self.max_schedules:
                stats["truncated"] = True
                return
            run = self._replay(prefix)
            stats["replays"] += 1
            if protocol_name[0] is None:
                protocol_name[0] = run.protocol.name
            try:
                if run.finished:
                    results.append(ScheduleResult(run))
                    return
                enabled = run.enabled()
                if not enabled:
                    raise CheckError(
                        "schedule stuck at %r (outcomes=%r)"
                        % (prefix, run.outcomes())
                    )
                footprints = (
                    {index: run.footprint(index) for index in enabled}
                    if self.prune
                    else {}
                )
                explored: List[int] = []
                for index in enabled:
                    if index in sleep:
                        stats["pruned"] += 1
                        continue
                    if self.prune:
                        child_sleep = frozenset(
                            other
                            for other in set(sleep) | set(explored)
                            if other != index
                            and other in footprints
                            and independent(
                                footprints[other], footprints[index]
                            )
                        )
                    else:
                        child_sleep = frozenset()
                    dfs(prefix + (index,), child_sleep)
                    explored.append(index)
            finally:
                run.close()

        dfs((), frozenset())
        return ExplorationReport(
            self.workload.name,
            protocol_name[0] or "?",
            results,
            replays=stats["replays"],
            pruned=stats["pruned"],
            truncated=stats["truncated"],
            exhaustive=True,
        )

    def random_walks(self, walks: int = 50, seed: int = 0) -> ExplorationReport:
        """Sample complete schedules with a seeded random scheduler."""
        results: List[ScheduleResult] = []
        protocol_name = [None]
        replays = 0
        for walk in range(walks):
            rng = random.Random("%d:%d" % (seed, walk))
            run = self.fresh_run()
            replays += 1
            if protocol_name[0] is None:
                protocol_name[0] = run.protocol.name
            try:
                while not run.finished:
                    enabled = run.enabled()
                    if not enabled:
                        raise CheckError(
                            "schedule stuck during walk %d (outcomes=%r)"
                            % (walk, run.outcomes())
                        )
                    run.step(rng.choice(enabled))
                results.append(ScheduleResult(run))
            finally:
                run.close()
        return ExplorationReport(
            self.workload.name,
            protocol_name[0] or "?",
            results,
            replays=replays,
            exhaustive=False,
        )
