"""The workload language of the schedule explorer.

A :class:`TxnProgram` is a named, deterministic sequence of operations
one transaction performs.  The scheduler advances programs one operation
at a time; an operation is the *atomicity quantum* — its lock demands and
its data access happen inside one scheduler step unless a lock request
blocks, in which case the transaction stays suspended mid-operation until
the scheduler is allowed to resume it.

Operations expose three faces to the scheduler:

* :meth:`Op.demands` — the logical lock demands ``(resource, mode, via)``
  to run through the protocol *before* the data access;
* :meth:`Op.apply` — the data access itself (recorded as ``r``/``w``
  :class:`~repro.check.oracle.DataOp` events for the serializability
  oracle, with undo actions registered on the transaction so aborts roll
  back cleanly);
* :meth:`Op.data_footprint` — the read/write set used for the explorer's
  independence-based pruning.

Arguments may be callables taking the running schedule; they are resolved
lazily so programs can reference state that only exists at run time
(e.g. an object created by an earlier operation).

The :class:`SharedRead`/:class:`SharedWrite` pair encodes the paper's
section 3.2.2 scenario faithfully: the transaction touches shared common
data *believing an earlier lock on the referencing object covers it*.
Under protocols whose plans claim to cover referenced entry points
(implicitly via downward propagation, or via tuple locks that follow
references) the ops demand nothing themselves; under baselines that make
no such claim (:data:`EXPLICIT_DEMAND_PROTOCOLS`) an honest application
would — and therefore these ops do — issue an explicit lock demand on the
shared target.  The one protocol that *claims* cover but does not deliver
it (``naive_dag_unsafe``) thus reaches the data race the explorer is
built to rediscover, while honest baselines stay safe.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.graphs.units import (
    component_resource,
    object_resource,
    relation_resource,
)
from repro.locking.modes import AP, INC, IX, S, SI, X, LockMode
from repro.nf2.paths import parse_path
from repro.nf2.values import ComplexObject

#: Protocols whose lock plans claim to make locks on referenced common
#: data visible without an explicit demand on the shared target: the
#: paper's protocol (downward propagation), the tuple-level System R
#: baseline (tuple locks follow references) and the *unsafe* DAG horn
#: (which claims implicit cover across dashed edges but does not deliver
#: it — the section 3.2.2 bug).
IMPLICIT_COVER_PROTOCOLS = frozenset(
    {"herrmann", "system_r_tuple", "naive_dag_unsafe"}
)

#: Protocols under which a correct application must lock shared targets
#: explicitly (they never promised anything about referenced data).
EXPLICIT_DEMAND_PROTOCOLS = frozenset(
    {"naive_dag", "system_r_relation", "xsql"}
)


def claims_reference_cover(protocol) -> bool:
    """Does this protocol's plan claim to cover referenced entry points?"""
    return protocol.name in IMPLICIT_COVER_PROTOCOLS


def _resolve(value, run):
    """Late-bind an op argument: callables receive the running schedule."""
    return value(run) if callable(value) else value


def _normalize_demand(demand) -> Tuple[tuple, LockMode, Optional[tuple]]:
    if len(demand) == 2:
        resource, mode = demand
        return tuple(resource), mode, None
    resource, mode, via = demand
    return tuple(resource), mode, None if via is None else tuple(via)


class Op:
    """One operation of a transaction program."""

    label = "op"

    def demands(self, run, txn) -> List[tuple]:
        """Logical lock demands, each ``(resource, mode)`` or
        ``(resource, mode, via)``."""
        return []

    def apply(self, run, txn):
        """Perform the data access (all demands are granted by now)."""

    def data_footprint(self, run, txn) -> List[Tuple[tuple, str]]:
        """``(resource, "r"|"w")`` pairs for independence pruning."""
        return []

    def __repr__(self):
        return "%s(%s)" % (type(self).__name__, self.label)


class Demand(Op):
    """A pure logical lock demand — no data access.

    This is the building block of the paper's narratives: "lock robot r1
    in X".  ``via`` names the referencing node for entry-point demands
    reached through a dashed edge (rule 1/2 via-check).
    """

    def __init__(self, resource, mode: LockMode, via=None, label=None):
        self.resource = resource
        self.mode = mode
        self.via = via
        self.label = label or "demand"

    def demands(self, run, txn):
        return [(_resolve(self.resource, run), self.mode, _resolve(self.via, run))]


class SharedRead(Op):
    """Read shared common data assumed covered by an earlier demand.

    ``target`` is the entry-point resource ``(db, seg, rel, key)`` of the
    shared object.  No lock demand is issued under implicit-cover
    protocols (the earlier demand's downward propagation is trusted to
    have locked it); explicit-demand baselines S-lock the target first.
    """

    demand_mode = S
    kind = "r"

    def __init__(self, target, via=None, label=None):
        self.target = target
        self.via = via
        self.label = label or "shared-%s" % self.kind

    def demands(self, run, txn):
        if claims_reference_cover(run.protocol):
            return []
        return [(_resolve(self.target, run), self.demand_mode,
                 _resolve(self.via, run))]

    def apply(self, run, txn):
        target = tuple(_resolve(self.target, run))
        obj = run.protocol.units.resolve(target)
        run.record_data(txn, self.kind, target)
        if isinstance(obj, ComplexObject):
            txn.read_log.append((target, repr(obj.root)))
        return obj

    def data_footprint(self, run, txn):
        return [(tuple(_resolve(self.target, run)), self.kind)]


class SharedWrite(SharedRead):
    """Read-modify-write one string attribute of shared common data.

    The in-place update appends ``+<txn name>`` to the attribute — a
    miniature of the paper's "robot r1's effector e2 is changed" update.
    When two transactions interleave their read-modify-write on the same
    target without mutual exclusion, one suffix is computed from a stale
    read: the lost update the serializability oracle then exposes as a
    precedence-graph cycle.
    """

    demand_mode = X
    kind = "w"

    def __init__(self, target, attribute, via=None, label=None):
        super().__init__(target, via=via, label=label)
        self.attribute = attribute

    def apply(self, run, txn):
        target = tuple(_resolve(self.target, run))
        obj = run.protocol.units.resolve(target)
        database = run.stack.database
        run.record_data(txn, "r", target)
        old = obj.root[self.attribute]
        run.record_data(txn, "w", target)
        obj.root[self.attribute] = "%s+%s" % (old, txn.name)
        notify = lambda: database.notify_object_changed(  # noqa: E731
            obj.relation, obj.surrogate
        )

        def undo(root=obj.root, attribute=self.attribute, value=old, note=notify):
            root[attribute] = value
            note()

        txn.record_undo(undo)
        notify()
        return obj

    def data_footprint(self, run, txn):
        return [(tuple(_resolve(self.target, run)), "w")]


class CommutingUpdate(Op):
    """Base of the blind commuting updates (semantic lock modes).

    Unlike :class:`SharedWrite`'s read-modify-write, a commuting update
    never reads the current value: a set insert, list append or counter
    increment is *blind*, which is exactly what makes either execution
    order of two same-class updates equivalent.  The op always issues its
    own lock demand on the shared target — in the commuting mode
    (SI/AP/INC) when the protocol runs with ``use_semantic_modes``, in
    plain X otherwise.  The ablation is therefore observable purely in
    which schedules the lock table admits, never in what the operation
    does to the data.
    """

    kind = "op"
    semantic_mode = X

    def __init__(self, target, attribute, via=None, label=None):
        self.target = target
        self.attribute = attribute
        self.via = via
        self.label = label or "commuting-%s" % self.kind

    def demand_mode(self, run) -> LockMode:
        if getattr(run.protocol, "use_semantic_modes", False):
            return self.semantic_mode
        return X

    def demands(self, run, txn):
        return [
            (
                tuple(_resolve(self.target, run)),
                self.demand_mode(run),
                _resolve(self.via, run),
            )
        ]

    def data_footprint(self, run, txn):
        return [(tuple(_resolve(self.target, run)), self.kind)]

    def apply(self, run, txn):
        target = tuple(_resolve(self.target, run))
        obj = run.protocol.units.resolve(target)
        database = run.stack.database
        # blind update: one data op in the commuting class, no read
        run.record_data(txn, self.kind, target)
        notify = lambda: database.notify_object_changed(  # noqa: E731
            obj.relation, obj.surrogate
        )
        undo = self._mutate(run, txn, obj, notify)
        txn.record_undo(undo)
        notify()
        return obj

    def _mutate(self, run, txn, obj, notify):
        """Perform the update; return the undo closure."""
        raise NotImplementedError


class SharedSetInsert(CommutingUpdate):
    """Insert one element into a set-valued attribute of shared data.

    Set inserts commute: ``{a} + x + y == {a} + y + x``.  The inserted
    element defaults to one derived from the transaction name, so every
    transaction's contribution is distinct and the undo (remove exactly
    that element) is unambiguous.
    """

    kind = "si"
    semantic_mode = SI

    def __init__(self, target, attribute, element=None, via=None, label=None):
        super().__init__(target, attribute, via=via, label=label)
        self.element = element

    def _element(self, txn):
        if self.element is not None:
            return self.element
        return "%s-by-%s" % (self.attribute, txn.name)

    def _mutate(self, run, txn, obj, notify):
        collection = obj.root[self.attribute]
        element = self._element(txn)
        collection.add(element)

        def undo(collection=collection, element=element, note=notify):
            collection.remove(element)
            note()

        return undo


class SharedListAppend(SharedSetInsert):
    """Append one element to a list-valued attribute of shared data.

    Appends commute up to list order; the oracle treats the element
    *membership* as the semantic state, which either order produces.
    """

    kind = "ap"
    semantic_mode = AP


class SharedCounterIncrement(CommutingUpdate):
    """Add a delta to a numeric attribute of shared data.

    Increments commute by associativity of addition; the undo subtracts
    the same delta (also commutative), so aborts compose with concurrent
    increments without restoring a possibly stale snapshot.
    """

    kind = "inc"
    semantic_mode = INC

    def __init__(self, target, attribute, delta=1, via=None, label=None):
        super().__init__(target, attribute, via=via, label=label)
        self.delta = delta

    def _mutate(self, run, txn, obj, notify):
        root = obj.root
        attribute = self.attribute
        delta = self.delta
        root[attribute] = root[attribute] + delta

        def undo(root=root, attribute=attribute, delta=delta, note=notify):
            root[attribute] = root[attribute] - delta
            note()

        return undo


class TxnOp(Op):
    """Delegate to a :class:`~repro.txn.manager.TransactionManager` method.

    The primary lock demand of the method is pre-declared so the
    scheduler can block the transaction *before* the data access (the
    manager's synchronous API uses ``wait=False`` and would raise
    instead).  Residual requests made inside the manager (index entries,
    freshly inserted objects) are covered re-requests or uncontended in
    well-formed workloads; a genuine residual conflict raises and aborts
    the transaction, which the schedule records as a ``failed:`` outcome.
    """

    #: method -> (mode, demand builder); builders receive (run, args).
    _READS = ("read_object", "read_component", "read_via_reference")

    def __init__(self, method: str, *args, label=None, **kwargs):
        self.method = method
        self.args = args
        self.kwargs = kwargs
        self.label = label or method

    def _resolved_args(self, run):
        return [_resolve(arg, run) for arg in self.args]

    def _primary(self, run):
        """``(resource, mode, via)`` of the method's target granule."""
        catalog = run.stack.catalog
        args = self._resolved_args(run)
        method = self.method
        if method == "read_object":
            return (object_resource(catalog, args[0], args[1]), S, None)
        if method == "read_component":
            steps = (
                parse_path(args[2]) if isinstance(args[2], str) else tuple(args[2])
            )
            base = object_resource(catalog, args[0], args[1])
            return (component_resource(base, steps), S, None)
        if method == "read_via_reference":
            ref = args[0]
            target = run.stack.database.dereference(ref)
            return (
                object_resource(catalog, ref.relation, target.key),
                S,
                tuple(args[1]),
            )
        if method in ("update_component", "add_element", "remove_element"):
            steps = (
                parse_path(args[2]) if isinstance(args[2], str) else tuple(args[2])
            )
            base = object_resource(catalog, args[0], args[1])
            return (component_resource(base, steps), X, None)
        if method in ("update_object", "delete_object"):
            return (object_resource(catalog, args[0], args[1]), X, None)
        if method == "insert_object":
            schema = catalog.schema(args[0])
            return (
                relation_resource(
                    run.stack.database.name, schema.segment, args[0]
                ),
                IX,
                None,
            )
        return None

    def demands(self, run, txn):
        primary = self._primary(run)
        return [primary] if primary is not None else []

    def apply(self, run, txn):
        args = self._resolved_args(run)
        result = getattr(run.stack.txns, self.method)(
            txn, *args, wait=False, **self.kwargs
        )
        primary = self._primary(run)
        if primary is not None:
            kind = "r" if self.method in self._READS else "w"
            run.record_data(txn, kind, primary[0])
        return result

    def data_footprint(self, run, txn):
        primary = self._primary(run)
        if primary is None:
            return []
        kind = "r" if self.method in self._READS else "w"
        return [(tuple(primary[0]), kind)]


class Call(Op):
    """A generic operation with declared demands and read/write sets."""

    def __init__(self, fn=None, demands=(), reads=(), writes=(), label=None):
        self.fn = fn
        self._demands = tuple(demands)
        self.reads = tuple(reads)
        self.writes = tuple(writes)
        self.label = label or getattr(fn, "__name__", "call")

    def demands(self, run, txn):
        return [
            tuple(_resolve(part, run) for part in demand)
            for demand in self._demands
        ]

    def apply(self, run, txn):
        for resource in self.reads:
            run.record_data(txn, "r", tuple(_resolve(resource, run)))
        for resource in self.writes:
            run.record_data(txn, "w", tuple(_resolve(resource, run)))
        if self.fn is not None:
            return self.fn(run, txn)
        return None

    def data_footprint(self, run, txn):
        footprint = [
            (tuple(_resolve(resource, run)), "r") for resource in self.reads
        ]
        footprint.extend(
            (tuple(_resolve(resource, run)), "w") for resource in self.writes
        )
        return footprint


class Commit(Op):
    """Explicit commit marker (programs auto-commit at their end)."""

    label = "commit"


class Abort(Op):
    """Explicit abort marker — the transaction rolls back voluntarily."""

    label = "abort"


class TxnProgram:
    """A named transaction: principal, flags and its operation sequence."""

    def __init__(self, name: str, ops: Sequence[Op], principal=None,
                 long: bool = False):
        self.name = name
        self.ops = list(ops)
        self.principal = principal if principal is not None else name
        self.long = long

    def __repr__(self):
        return "TxnProgram(%s, %d ops)" % (self.name, len(self.ops))
