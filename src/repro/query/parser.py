"""Recursive-descent parser for the HDBL-like query subset.

Grammar (case-insensitive keywords)::

    query      := SELECT var [ '.' ident+ ]
                  FROM binding ( ',' binding )*
                  [ WHERE predicate ( AND predicate )* ]
                  FOR ( READ | UPDATE | DELETE )
                  [ SET assignment ( ',' assignment )* ]
    assignment := var '.' ident ( '.' ident )* '=' literal
    binding    := var IN ( ident | var '.' ident ( '.' ident )* )
    predicate  := var '.' ident ( '.' ident )* '=' literal
    literal    := 'string' | integer | float | TRUE | FALSE

Exactly enough to parse the paper's Q1/Q2/Q3 and the workloads' query
templates.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.errors import QueryError
from repro.query.ast import AccessKind, Assignment, Binding, Predicate, Query

_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<string>'(?:[^'\\]|\\.)*')
      | (?P<number>-?\d+(?:\.\d+)?)
      | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
      | (?P<punct>[.,=])
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {"SELECT", "FROM", "WHERE", "AND", "FOR", "IN", "READ", "UPDATE",
             "DELETE", "SET", "TRUE", "FALSE"}


class _Token:
    __slots__ = ("kind", "value")

    def __init__(self, kind, value):
        self.kind = kind
        self.value = value

    def __repr__(self):
        return "%s(%r)" % (self.kind, self.value)


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise QueryError("cannot tokenize query at %r" % remainder[:20])
        position = match.end()
        if match.lastgroup == "string":
            raw = match.group("string")[1:-1]
            tokens.append(_Token("literal", raw.replace("\\'", "'")))
        elif match.lastgroup == "number":
            raw = match.group("number")
            value = float(raw) if "." in raw else int(raw)
            tokens.append(_Token("literal", value))
        elif match.lastgroup == "ident":
            word = match.group("ident")
            if word.upper() in _KEYWORDS:
                if word.upper() == "TRUE":
                    tokens.append(_Token("literal", True))
                elif word.upper() == "FALSE":
                    tokens.append(_Token("literal", False))
                else:
                    tokens.append(_Token("keyword", word.upper()))
            else:
                tokens.append(_Token("ident", word))
        else:
            tokens.append(_Token("punct", match.group("punct")))
    return tokens


class _Parser:
    def __init__(self, tokens: List[_Token], text: str):
        self.tokens = tokens
        self.index = 0
        self.text = text

    def peek(self) -> Optional[_Token]:
        return self.tokens[self.index] if self.index < len(self.tokens) else None

    def next(self) -> _Token:
        token = self.peek()
        if token is None:
            raise QueryError("unexpected end of query: %r" % self.text)
        self.index += 1
        return token

    def expect_keyword(self, word: str):
        token = self.next()
        if token.kind != "keyword" or token.value != word:
            raise QueryError("expected %s, got %r in %r" % (word, token, self.text))

    def expect_ident(self) -> str:
        token = self.next()
        if token.kind != "ident":
            raise QueryError("expected identifier, got %r" % (token,))
        return token.value

    def expect_punct(self, char: str):
        token = self.next()
        if token.kind != "punct" or token.value != char:
            raise QueryError("expected %r, got %r" % (char, token))

    def at_punct(self, char: str) -> bool:
        token = self.peek()
        return token is not None and token.kind == "punct" and token.value == char

    def at_keyword(self, word: str) -> bool:
        token = self.peek()
        return token is not None and token.kind == "keyword" and token.value == word

    def dotted_tail(self) -> Tuple[str, ...]:
        """Consume ``.ident`` repetitions."""
        parts: List[str] = []
        while self.at_punct("."):
            self.expect_punct(".")
            parts.append(self.expect_ident())
        return tuple(parts)


def parse_query(text: str) -> Query:
    """Parse one query; raises :class:`~repro.errors.QueryError` on errors."""
    parser = _Parser(_tokenize(text), text)
    parser.expect_keyword("SELECT")
    select_var = parser.expect_ident()
    select_path = parser.dotted_tail()

    parser.expect_keyword("FROM")
    bindings: List[Binding] = []
    while True:
        var = parser.expect_ident()
        parser.expect_keyword("IN")
        first = parser.expect_ident()
        tail = parser.dotted_tail()
        if tail:
            bindings.append(Binding(var, base_var=first, path=tail))
        else:
            bindings.append(Binding(var, relation=first))
        if parser.at_punct(","):
            parser.expect_punct(",")
            continue
        break

    predicates: List[Predicate] = []
    if parser.at_keyword("WHERE"):
        parser.expect_keyword("WHERE")
        while True:
            var = parser.expect_ident()
            path = parser.dotted_tail()
            parser.expect_punct("=")
            literal = parser.next()
            if literal.kind != "literal":
                raise QueryError("expected literal, got %r" % (literal,))
            predicates.append(Predicate(var, path, literal.value))
            if parser.at_keyword("AND"):
                parser.expect_keyword("AND")
                continue
            break

    parser.expect_keyword("FOR")
    access_token = parser.next()
    if access_token.kind != "keyword" or access_token.value not in AccessKind.ALL:
        raise QueryError("expected READ/UPDATE/DELETE, got %r" % (access_token,))

    assignments: List[Assignment] = []
    if parser.at_keyword("SET"):
        parser.expect_keyword("SET")
        while True:
            var = parser.expect_ident()
            path = parser.dotted_tail()
            parser.expect_punct("=")
            literal = parser.next()
            if literal.kind != "literal":
                raise QueryError("expected literal, got %r" % (literal,))
            assignments.append(Assignment(var, path, literal.value))
            if parser.at_punct(","):
                parser.expect_punct(",")
                continue
            break

    if parser.peek() is not None:
        raise QueryError("trailing tokens after query: %r" % (parser.peek(),))
    return Query(
        select_var, bindings, predicates, access_token.value, select_path,
        assignments=assignments,
    )
