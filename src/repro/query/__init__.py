"""Query layer: HDBL-like parser, analyzer, executor."""

from repro.query.analyzer import DEFAULT_NONKEY_SELECTIVITY, QueryAnalyzer
from repro.query.ast import AccessKind, Binding, Predicate, Query
from repro.query.executor import QueryExecutor, ResultRow
from repro.query.parser import parse_query

__all__ = [
    "AccessKind",
    "Binding",
    "DEFAULT_NONKEY_SELECTIVITY",
    "Predicate",
    "Query",
    "QueryAnalyzer",
    "QueryExecutor",
    "ResultRow",
    "parse_query",
]
