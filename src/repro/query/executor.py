"""Query execution under a lock protocol.

Implements the full pipeline of section 4.1:

1. **query analysis** — :class:`~repro.query.analyzer.QueryAnalyzer`
   extracts access intents;
2. **optimization** — the lock-request optimizer chooses granules/modes
   and stores them in a query-specific lock graph;
3. **execution** — range variables are bound against the database, the
   stored granule/mode information is instantiated on the touched
   instances, locks are requested from the lock manager through the
   active protocol, and only then is data returned.

The executor is protocol-agnostic: the same queries run under the paper's
protocol or any baseline, which is how the benchmarks compare them.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import QueryError
from repro.graphs.units import component_resource, object_resource, relation_resource
from repro.locking.modes import LockMode, S
from repro.nf2.paths import AttrStep, ElemStep
from repro.nf2.values import ListValue, SetValue, TupleValue
from repro.query.analyzer import QueryAnalyzer
from repro.query.ast import AccessKind, Query
from repro.query.parser import parse_query


class ResultRow:
    """One query result: the selected value plus its instance address."""

    __slots__ = ("object", "steps", "value")

    def __init__(self, obj, steps, value):
        self.object = obj
        self.steps = tuple(steps)
        self.value = value

    def __repr__(self):
        return "ResultRow(%r, %r)" % (self.object, self.value)


class QueryExecutor:
    """Executes parsed queries for a transaction under a protocol."""

    def __init__(self, protocol, optimizer, analyzer: Optional[QueryAnalyzer] = None):
        self.protocol = protocol
        self.optimizer = optimizer
        self.catalog = protocol.catalog
        self.database = protocol.catalog.database
        self.analyzer = analyzer or QueryAnalyzer(
            self.catalog, optimizer.statistics
        )

    # -- public API --------------------------------------------------------------

    def execute(self, txn, query, wait: bool = False) -> List[ResultRow]:
        """Run a query (text or AST) for ``txn``; returns result rows.

        Locks are requested before data is handed out; a conflict raises
        (``wait=False``) or parks the plan (simulator integration uses
        :meth:`lock_requirements` directly instead).
        """
        if isinstance(query, str):
            query = parse_query(query)
        self._check_authorization(txn, query)
        rows, demands = self._bind_and_plan(txn, query)
        for resource, mode in demands:
            self.protocol.request(txn, resource, mode, wait=wait, long=getattr(txn, "long", False))
        if query.assignments:
            self._apply_assignments(txn, query, rows)
        return rows

    def _apply_assignments(self, txn, query: Query, rows):
        """Apply SET clauses to every selected row (locks already held)."""
        relation = self.database.relation(query.root_binding().relation)
        for row in rows:
            for assignment in query.assignments:
                container = row.value
                for part in assignment.path[:-1]:
                    if not isinstance(container, TupleValue):
                        raise QueryError(
                            "SET path %r does not resolve" % (assignment.path,)
                        )
                    container = container[part]
                if not isinstance(container, TupleValue):
                    raise QueryError(
                        "SET path %r does not resolve" % (assignment.path,)
                    )
                last = assignment.path[-1]
                old_value = container[last]
                container[last] = assignment.value
                record_undo = getattr(txn, "record_undo", None)
                if record_undo is not None:
                    record_undo(
                        lambda c=container, n=last, v=old_value: c.__setitem__(n, v)
                    )
            relation.schema.object_type.validate(
                row.object.root, resolver=self.database._resolves
            )

    def lock_requirements(self, txn, query) -> Tuple[List[ResultRow], List[Tuple[Tuple, LockMode]]]:
        """Rows plus the (resource, mode) demands, without acquiring locks.

        Used by the discrete-event simulator, which acquires the demands
        stepwise in simulated time.
        """
        if isinstance(query, str):
            query = parse_query(query)
        self._check_authorization(txn, query)
        return self._bind_and_plan(txn, query)

    # -- internals ------------------------------------------------------------------

    def _check_authorization(self, txn, query: Query):
        authorization = self.protocol.authorization
        if authorization is None:
            return
        relation = query.root_binding().relation
        if query.access == AccessKind.READ:
            authorization.check_read(txn, relation)
        else:
            authorization.check_modify(txn, relation)

    def _bind_and_plan(self, txn, query: Query):
        intents = self.analyzer.analyze(query)
        graphs = self.optimizer.plan_query(intents)
        root = query.root_binding()
        graph = graphs[root.relation]

        rows = self._evaluate(query)
        demands: List[Tuple[Tuple, LockMode]] = []
        seen = set()
        for annotation in graph.annotations:
            for resource in self._instantiate(annotation, query, rows):
                key = (resource, annotation.mode)
                if key not in seen:
                    seen.add(key)
                    demands.append((resource, annotation.mode))
        demands.extend(self._index_demands(query, seen))
        return rows, demands

    def _index_demands(self, query: Query, seen):
        """S locks on index entries for the root's equality predicates.

        The entry is locked whether or not a matching object exists —
        an inserter of that value must X-lock the same entry first, so
        equality-predicate phantoms cannot occur (section 5 future work,
        implemented via the index units of Figure 2).
        """
        from repro.graphs.units import index_entry_resource

        root = query.root_binding()
        relation = self.database.relation(root.relation)
        out = []
        for predicate in query.predicates_on(root.var):
            if len(predicate.path) != 1:
                continue
            if predicate.path[0] not in relation.indexes:
                continue
            entry = index_entry_resource(
                self.catalog, root.relation, predicate.path[0], predicate.value
            )
            if (entry, S) not in seen:
                seen.add((entry, S))
                out.append((entry, S))
        return out

    # -- evaluation -----------------------------------------------------------------

    def _evaluate(self, query: Query) -> List[ResultRow]:
        root = query.root_binding()
        relation = self.database.relation(root.relation)
        schema = relation.schema

        objects = []
        key_predicates = [
            p
            for p in query.predicates_on(root.var)
            if len(p.path) == 1 and p.path[0] == schema.key
        ]
        index_predicates = [
            p
            for p in query.predicates_on(root.var)
            if len(p.path) == 1 and p.path[0] in relation.indexes
        ]
        if key_predicates:
            key = key_predicates[0].value
            if relation.contains_key(key):
                objects.append(relation.get(key))
        elif index_predicates:
            # index-assisted evaluation: fetch candidates by surrogate
            # instead of scanning the relation
            predicate = index_predicates[0]
            index = relation.indexes[predicate.path[0]]
            for surrogate in index.lookup(predicate.value):
                objects.append(relation.get_by_surrogate(surrogate))
        else:
            objects.extend(relation)
        objects = [
            obj
            for obj in objects
            if self._matches(obj.root, query.predicates_on(root.var))
        ]

        chain = query.chain_to(query.select_var)
        rows: List[ResultRow] = []
        for obj in objects:
            partial = [((), obj.root)]
            for binding in chain[1:]:
                grown = []
                for steps, value in partial:
                    collection_steps = list(steps)
                    container = value
                    for part in binding.path:
                        if not isinstance(container, TupleValue):
                            raise QueryError(
                                "path %r does not reach a collection" % (binding.path,)
                            )
                        collection_steps.append(AttrStep(part))
                        container = container[part]
                    if not isinstance(container, (SetValue, ListValue)):
                        raise QueryError(
                            "range variable %r ranges over non-collection" % binding.var
                        )
                    for element in container:
                        if not self._matches(element, query.predicates_on(binding.var)):
                            continue
                        element_key = self._element_key(element)
                        grown.append(
                            (
                                tuple(collection_steps) + (ElemStep(element_key),),
                                element,
                            )
                        )
                partial = grown
            for steps, value in partial:
                final_steps = list(steps)
                final_value = value
                for part in query.select_path:
                    if not isinstance(final_value, TupleValue):
                        raise QueryError("projection through non-tuple at %r" % part)
                    final_steps.append(AttrStep(part))
                    final_value = final_value[part]
                rows.append(ResultRow(obj, final_steps, final_value))
        return rows

    def _matches(self, value, predicates) -> bool:
        for predicate in predicates:
            current = value
            for part in predicate.path:
                if not isinstance(current, TupleValue) or part not in current:
                    return False
                current = current[part]
            if current != predicate.value:
                return False
        return True

    def _element_key(self, element):
        if isinstance(element, TupleValue):
            for name in element.keys():
                if name.endswith("_id"):
                    return element[name]
        return repr(element)

    # -- lock instantiation ------------------------------------------------------------

    def _instantiate(self, annotation, query: Query, rows: List[ResultRow]):
        """Concrete resources for one annotation over the result rows."""
        root = query.root_binding()
        schema = self.catalog.schema(root.relation)
        if annotation.relation_level:
            yield relation_resource(
                self.database.name, schema.segment, root.relation
            )
            return
        emitted = set()
        if not rows:
            # No matching data: lock the relation in intention-compatible
            # coarse mode?  The paper defers phantoms (section 5); we lock
            # nothing beyond what the protocol's ancestors already cover.
            return
        for row in rows:
            obj_res = object_resource(self.catalog, root.relation, row.object.key)
            resource = self._cut_resource(obj_res, row.steps, annotation.path)
            if resource not in emitted:
                emitted.add(resource)
                yield resource

    def _cut_resource(self, obj_res, instance_steps, annotation_path):
        """Prefix of the row's instance path matching the annotation path."""
        cut = len(annotation_path)
        steps = tuple(instance_steps)[:cut]
        if len(steps) < cut:
            raise QueryError(
                "annotation path %r longer than instance path %r"
                % (annotation_path, instance_steps)
            )
        return component_resource(obj_res, steps)
