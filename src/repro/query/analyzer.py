"""Query analysis: which attributes will be accessed, and how.

Section 4.1: "Each query to be processed is first analyzed to find out
which attributes will be accessed, and which kind of access (read,
update, ...) will be done.  Then, 'optimal' lock requests ... are
determined."  This module performs the first half; the produced
:class:`~repro.protocol.optimizer.AccessIntent` records feed the
lock-request optimizer.

Selectivity estimation mirrors a textbook optimizer:

* an equality predicate on the *key* attribute of a relation selects
  ``1 / object_count`` of its objects;
* an equality predicate on the key of a collection's element type selects
  ``1 / fanout`` of its elements;
* equality on a non-key attribute uses a default selectivity;
* no predicate means the whole collection is accessed (selectivity 1.0),
  and unkeyed element types always count as fully accessed because
  per-element locks need element identity.
"""

from __future__ import annotations

from typing import List

from repro.errors import QueryError
from repro.nf2.paths import STAR, AttrStep
from repro.nf2.types import ListType, SetType, TupleType
from repro.protocol.optimizer import AccessIntent
from repro.query.ast import AccessKind, Query

#: selectivity assumed for equality on a non-key attribute
DEFAULT_NONKEY_SELECTIVITY = 0.1


class QueryAnalyzer:
    """Turns parsed queries into access intents using catalog + statistics."""

    def __init__(self, catalog, statistics):
        self.catalog = catalog
        self.statistics = statistics

    def analyze(self, query: Query) -> List[AccessIntent]:
        root = query.root_binding()
        schema = self.catalog.schema(root.relation)
        chain = query.chain_to(query.select_var)

        object_selectivity = self._object_selectivity(query, root, schema)

        path: List = []
        selectivities: List[float] = []
        current_type = schema.object_type
        for binding in chain[1:]:
            for part in binding.path:
                if not isinstance(current_type, TupleType):
                    raise QueryError(
                        "binding %r descends through non-tuple at %r"
                        % (binding.var, part)
                    )
                path.append(AttrStep(part))
                current_type = current_type.attribute_type(part)
            if not isinstance(current_type, (SetType, ListType)):
                raise QueryError(
                    "range variable %r must iterate a set or list" % binding.var
                )
            element_type = current_type.element_type
            path.append(STAR)
            selectivities.append(
                self._element_selectivity(
                    query, binding.var, element_type, root.relation, tuple(path[:-1])
                )
            )
            current_type = element_type

        for part in query.select_path:
            if not isinstance(current_type, TupleType):
                raise QueryError(
                    "projection %r descends through non-tuple" % (part,)
                )
            path.append(AttrStep(part))
            current_type = current_type.attribute_type(part)

        write = query.access in (AccessKind.UPDATE, AccessKind.DELETE)
        return [
            AccessIntent(
                root.relation,
                tuple(path),
                write=write,
                object_selectivity=object_selectivity,
                selectivities=selectivities,
            )
        ]

    # -- selectivities -----------------------------------------------------------

    def _object_selectivity(self, query, root, schema) -> float:
        count = max(1, self.statistics.object_count(root.relation))
        best = 1.0
        for predicate in query.predicates_on(root.var):
            if len(predicate.path) == 1 and predicate.path[0] == schema.key:
                best = min(best, 1.0 / count)
            else:
                best = min(best, DEFAULT_NONKEY_SELECTIVITY)
        return best

    def _element_selectivity(
        self, query, var, element_type, relation_name, collection_path
    ) -> float:
        if not isinstance(element_type, TupleType) or element_type.key is None:
            # unkeyed elements cannot be locked individually; report full
            # access so the optimizer chooses the collection granule
            return 1.0
        fanout = max(1.0, self.statistics.estimate_fanout(relation_name, collection_path))
        best = 1.0
        for predicate in query.predicates_on(var):
            if len(predicate.path) == 1 and predicate.path[0] == element_type.key:
                best = min(best, 1.0 / fanout)
            else:
                best = min(best, DEFAULT_NONKEY_SELECTIVITY)
        return best
