"""AST of the HDBL-like query subset (Figure 3).

The paper's example queries are written "in a query language which is an
extension of SQL" (essentially HDBL, footnote 2).  The reproduced subset
covers exactly the forms the lock technique consumes::

    SELECT o
    FROM   c IN cells, o IN c.c_objects
    WHERE  c.cell_id = 'c1'
    FOR    READ

    SELECT r
    FROM   c IN cells, r IN c.robots
    WHERE  c.cell_id = 'c1' AND r.robot_id = 'r2'
    FOR    UPDATE

i.e. range variables bound to relations or to collection-valued paths of
other variables, a conjunction of equality predicates, and an access
clause (FOR READ / FOR UPDATE / FOR DELETE).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import QueryError


class AccessKind:
    READ = "READ"
    UPDATE = "UPDATE"
    DELETE = "DELETE"

    ALL = (READ, UPDATE, DELETE)


class Binding:
    """``var IN source`` — source is a relation name or ``other_var.path``."""

    __slots__ = ("var", "relation", "base_var", "path")

    def __init__(self, var: str, relation: Optional[str] = None,
                 base_var: Optional[str] = None, path: Tuple[str, ...] = ()):
        if (relation is None) == (base_var is None):
            raise QueryError(
                "binding %r must come from a relation or from a variable path"
                % var
            )
        self.var = var
        self.relation = relation
        self.base_var = base_var
        self.path = tuple(path)

    @property
    def from_relation(self) -> bool:
        return self.relation is not None

    def __repr__(self):
        if self.from_relation:
            return "Binding(%s IN %s)" % (self.var, self.relation)
        return "Binding(%s IN %s.%s)" % (self.var, self.base_var, ".".join(self.path))


class Predicate:
    """``var.attr_path = literal`` (conjunctions only, like Q2/Q3)."""

    __slots__ = ("var", "path", "value")

    def __init__(self, var: str, path: Tuple[str, ...], value):
        if not path:
            raise QueryError("predicate needs an attribute path")
        self.var = var
        self.path = tuple(path)
        self.value = value

    def __repr__(self):
        return "Predicate(%s.%s = %r)" % (self.var, ".".join(self.path), self.value)


class Assignment:
    """``SET var.attr_path = literal`` — applied to every selected row."""

    __slots__ = ("var", "path", "value")

    def __init__(self, var: str, path: Tuple[str, ...], value):
        if not path:
            raise QueryError("assignment needs an attribute path")
        self.var = var
        self.path = tuple(path)
        self.value = value

    def __repr__(self):
        return "Assignment(%s.%s = %r)" % (self.var, ".".join(self.path), self.value)


class Query:
    """One parsed query."""

    def __init__(
        self,
        select_var: str,
        bindings: List[Binding],
        predicates: List[Predicate],
        access: str,
        select_path: Tuple[str, ...] = (),
        assignments: Optional[List["Assignment"]] = None,
    ):
        if access not in AccessKind.ALL:
            raise QueryError("unknown access kind %r" % access)
        by_var = {}
        for binding in bindings:
            if binding.var in by_var:
                raise QueryError("duplicate range variable %r" % binding.var)
            if not binding.from_relation and binding.base_var not in by_var:
                raise QueryError(
                    "binding %r uses unknown variable %r"
                    % (binding.var, binding.base_var)
                )
            by_var[binding.var] = binding
        if select_var not in by_var:
            raise QueryError("SELECT variable %r is not bound" % select_var)
        for predicate in predicates:
            if predicate.var not in by_var:
                raise QueryError(
                    "predicate uses unknown variable %r" % predicate.var
                )
        assignments = list(assignments or [])
        if assignments and access == AccessKind.READ:
            raise QueryError("SET clauses require FOR UPDATE")
        for assignment in assignments:
            if assignment.var != select_var:
                raise QueryError(
                    "SET may only assign through the selected variable %r"
                    % select_var
                )
        if assignments and select_path:
            raise QueryError("SET cannot be combined with a projection")
        self.select_var = select_var
        #: optional projection below the selected variable (``o.obj_name``)
        self.select_path = tuple(select_path)
        self.bindings = list(bindings)
        self.predicates = list(predicates)
        self.access = access
        self.assignments = assignments
        self.by_var = by_var

    def binding_of(self, var: str) -> Binding:
        return self.by_var[var]

    def predicates_on(self, var: str) -> List[Predicate]:
        return [p for p in self.predicates if p.var == var]

    def root_binding(self) -> Binding:
        """The relation-bound variable the select variable descends from."""
        binding = self.binding_of(self.select_var)
        while not binding.from_relation:
            binding = self.binding_of(binding.base_var)
        return binding

    def chain_to(self, var: str) -> List[Binding]:
        """Bindings from the relation-bound root down to ``var``."""
        chain = [self.binding_of(var)]
        while not chain[0].from_relation:
            chain.insert(0, self.binding_of(chain[0].base_var))
        return chain

    def __repr__(self):
        return "Query(SELECT %s FROM %r WHERE %r FOR %s)" % (
            self.select_var,
            self.bindings,
            self.predicates,
            self.access,
        )
