"""Baseline: XSQL complex-object locking (Figure 2(b), section 3.1).

System R extended for complex objects (Haskin/Lorie) adds one granule —
the *complex object* — between relation and tuple: "In this way it is
possible to lock a complex object with a single lock."

Applied to non-disjoint objects the whole-object lock must cover the
common data too ("locking complex objects as a whole (**including existing
common data, if any**) prohibits a high degree of concurrency", section
1): every referenced object is locked wholly in the same mode.  The
result is cheap lock administration but needless serialization — query Q1
and Q2 of Figure 3 conflict even though they touch different parts of cell
c1 (the granule-oriented problem, section 3.2.1).
"""

from __future__ import annotations

from typing import List

from repro.graphs.units import ancestors
from repro.locking.modes import S, X, LockMode, intention_of
from repro.protocol.base import LockPlan, PlannedLock, ProtocolBase


class XSQLProtocol(ProtocolBase):
    """Whole-complex-object granularity locking."""

    name = "xsql"

    def plan_request(self, txn, resource, mode: LockMode, via=None) -> LockPlan:
        # Whole-object expansion depends only on the reference closure —
        # the structure-version stamp covers it; no transaction inputs.
        self._check_mode(mode)
        merged = self.compiled_steps(
            (resource, mode), lambda: self._raw_steps(resource, mode)
        )
        return self.filter_plan(txn, merged)

    def _raw_steps(self, resource, mode: LockMode) -> List[PlannedLock]:
        intention = intention_of(mode)
        if len(resource) < 4:
            # database/segment/relation demands look like System R's
            target = resource
        else:
            # any demand within a complex object locks the whole object
            target = resource[:4]
        steps: List[PlannedLock] = []
        for ancestor in ancestors(target):
            steps.append(PlannedLock(ancestor, intention, "ancestor"))
        if mode in (S, X) and len(target) >= 4:
            # the whole-object lock covers common data by locking every
            # (transitively) referenced object in the same mode
            for entry in self.units.entry_points_below(target, transitive=True):
                for ancestor in ancestors(entry):
                    steps.append(PlannedLock(ancestor, intention, "ref-ancestor"))
                steps.append(PlannedLock(entry, mode, "ref-object"))
        steps.append(PlannedLock(target, mode, "object"))
        return steps
