"""Baseline: traditional System R locking applied to complex objects.

Figure 2(a): the lockable units are database, segment, relation and
*tuple*.  A complex object has no granule of its own — it is a bag of flat
tuples — so a transaction touching (part of) a complex object must lock
**every flat tuple it accesses individually** (the root tuple plus each
element tuple), with intention locks on the relation chain.

This is the "immense overhead caused by the administration of locks and
conflict tests" baseline of section 3.2.1: correct (conflicts surface at
tuple granularity, even on shared data, because shared tuples live in
their own relation and are locked there) but linear in the number of
tuples touched.

A coarse variant, :class:`SystemRRelationProtocol`, locks whole relations —
the other extreme of the trade-off Ries/Stonebraker measured.
"""

from __future__ import annotations

from typing import List

from repro.graphs.units import ancestors, object_resource
from repro.locking.modes import S, X, LockMode, intention_of
from repro.nf2.paths import ElemStep
from repro.nf2.types import ListType, SetType, TupleType
from repro.nf2.values import ComplexObject, ListValue, Reference, SetValue, TupleValue
from repro.protocol.base import LockPlan, PlannedLock, ProtocolBase


def tuple_resources_below(units, resource, follow_references=True):
    """Resources of every flat tuple in the subtree at ``resource``.

    Element tuples are the "tuples" of the System R view; reference leaves
    lead (when followed) to the referenced object's tuples in *its* own
    relation — System R knows nothing of complex objects, so the access
    simply touches tuples of another relation.
    Returns (tuple_resources, referenced_entry_chains) where the second
    list holds (relation_chain_resources, tuple_resources) per followed
    reference.
    """
    catalog = units.catalog
    out: List[tuple] = []
    references: List[Reference] = []

    def walk(value, res, value_type):
        if isinstance(value, TupleValue):
            out.append(res)
            for name, child in value.items():
                child_type = (
                    value_type.attribute_type(name)
                    if isinstance(value_type, TupleType)
                    else None
                )
                walk(child, res + (name,), child_type)
        elif isinstance(value, (SetValue, ListValue)):
            element_type = (
                value_type.element_type
                if isinstance(value_type, (SetType, ListType))
                else None
            )
            for element in value:
                if isinstance(element, TupleValue) and isinstance(
                    element_type, TupleType
                ):
                    key = element.get(element_type.key)
                    walk(element, res + (str(key),), element_type)
                elif isinstance(element, Reference):
                    references.append(element)
                elif isinstance(element, (SetValue, ListValue)):
                    # anonymous nested collections: index positionally
                    walk(element, res + (str(len(out)),), element_type)
        elif isinstance(value, Reference):
            references.append(value)

    value = units.resolve(resource)
    if isinstance(value, ComplexObject):
        schema = catalog.schema(value.relation)
        walk(value.root, resource, schema.object_type)
    elif len(resource) >= 4:
        from repro.graphs.units import steps_for_resource

        relation = catalog.database.relation(resource[2])
        steps = steps_for_resource(catalog, resource)
        value_type = relation.resolve_type(
            tuple(
                step if not isinstance(step, ElemStep) else ElemStep("*")
                for step in steps
            )
        )
        walk(value, resource, value_type)
    else:
        relation = catalog.database.relation(resource[2])
        for obj in relation:
            obj_res = object_resource(catalog, relation.name, obj.key)
            walk(obj.root, obj_res, relation.schema.object_type)

    chains = []
    if follow_references:
        seen = set()
        pending = list(references)
        while pending:
            ref = pending.pop(0)
            if ref in seen:
                continue
            seen.add(ref)
            target = catalog.database.dereference(ref)
            entry = object_resource(catalog, ref.relation, target.key)
            sub_out: List[tuple] = []
            sub_refs: List[Reference] = []

            def collect(value, res, value_type):
                if isinstance(value, TupleValue):
                    sub_out.append(res)
                    for name, child in value.items():
                        child_type = (
                            value_type.attribute_type(name)
                            if isinstance(value_type, TupleType)
                            else None
                        )
                        collect(child, res + (name,), child_type)
                elif isinstance(value, (SetValue, ListValue)):
                    element_type = (
                        value_type.element_type
                        if isinstance(value_type, (SetType, ListType))
                        else None
                    )
                    for element in value:
                        if isinstance(element, TupleValue) and isinstance(
                            element_type, TupleType
                        ):
                            collect(
                                element,
                                res + (str(element.get(element_type.key)),),
                                element_type,
                            )
                        elif isinstance(element, Reference):
                            sub_refs.append(element)
                elif isinstance(value, Reference):
                    sub_refs.append(value)

            schema = catalog.schema(ref.relation)
            collect(target.root, entry, schema.object_type)
            chains.append((ancestors(entry), sub_out))
            pending.extend(sub_refs)
    return out, chains


class SystemRTupleProtocol(ProtocolBase):
    """Tuple-granularity System R locking (fine extreme)."""

    name = "system_r_tuple"

    def __init__(
        self,
        manager,
        catalog,
        authorization=None,
        follow_references=True,
        **kwargs,
    ):
        super().__init__(manager, catalog, authorization=authorization, **kwargs)
        self.follow_references = follow_references

    def plan_request(self, txn, resource, mode: LockMode, via=None) -> LockPlan:
        # The expansion walks instance trees (tuple_resources_below), so it
        # depends on object *content* — which the structure-version stamp
        # covers — but never on the requesting transaction.
        self._check_mode(mode)
        merged = self.compiled_steps(
            (resource, mode), lambda: self._raw_steps(resource, mode)
        )
        return self.filter_plan(txn, merged)

    def _raw_steps(self, resource, mode: LockMode) -> List[PlannedLock]:
        from repro.graphs.units import is_index_resource

        intention = intention_of(mode)
        steps: List[PlannedLock] = []
        for ancestor in ancestors(resource):
            steps.append(PlannedLock(ancestor, intention, "ancestor"))
        if mode not in (S, X) or is_index_resource(resource):
            # intention demands and index units are plain leaf locks —
            # System R locks indexes like any other unit (Figure 2a)
            steps.append(PlannedLock(resource, mode, "target"))
            return steps
        tuples, chains = tuple_resources_below(
            self.units, resource, follow_references=self.follow_references
        )
        for tuple_resource in tuples:
            steps.append(PlannedLock(tuple_resource, mode, "tuple"))
        for chain, sub_tuples in chains:
            # Referenced tuples live in their own relation; under plain
            # System R reading them needs that relation's intention chain.
            for ancestor in chain:
                steps.append(PlannedLock(ancestor, intention, "ref-ancestor"))
            for tuple_resource in sub_tuples:
                steps.append(PlannedLock(tuple_resource, mode, "ref-tuple"))
        if not tuples:
            steps.append(PlannedLock(resource, mode, "target"))
        return steps


class SystemRRelationProtocol(ProtocolBase):
    """Relation-granularity System R locking (coarse extreme).

    Any access within a relation locks the whole relation; shared data is
    reached by locking the referenced relation entirely as well.
    """

    name = "system_r_relation"

    def plan_request(self, txn, resource, mode: LockMode, via=None) -> LockPlan:
        # Schema-only expansion: cacheable under the same stamp (relation
        # creation bumps the structure version).
        self._check_mode(mode)
        merged = self.compiled_steps(
            (resource, mode), lambda: self._raw_steps(resource, mode)
        )
        return self.filter_plan(txn, merged)

    def _raw_steps(self, resource, mode: LockMode) -> List[PlannedLock]:
        intention = intention_of(mode)
        relation_res = resource[:3] if len(resource) >= 3 else resource
        steps: List[PlannedLock] = []
        for ancestor in ancestors(relation_res):
            steps.append(PlannedLock(ancestor, intention, "ancestor"))
        steps.append(PlannedLock(relation_res, mode, "relation"))
        if mode in (S, X) and len(resource) >= 3:
            base_relation = resource[2].split("#", 1)[0]
            seen = {base_relation}
            pending = list(self.catalog.schema(base_relation).referenced_relations())
            while pending:
                target = pending.pop(0)
                if target in seen:
                    continue
                seen.add(target)
                schema = self.catalog.schema(target)
                target_res = (
                    self.catalog.database.name,
                    schema.segment,
                    target,
                )
                for ancestor in ancestors(target_res):
                    steps.append(PlannedLock(ancestor, intention, "ref-ancestor"))
                steps.append(PlannedLock(target_res, mode, "ref-relation"))
                pending.extend(schema.referenced_relations())
        return steps
