"""Baselines: the straightforward DAG protocol on non-disjoint objects.

Section 3.2.2 analyses what happens when the traditional DAG lock protocol
(GLPT76) is applied unchanged to non-disjoint complex objects, and this
module implements both horns of that dilemma:

* :class:`NaiveDAGProtocol` keeps the DAG rule "before requesting an X or
  IX lock on a node, **all parent nodes** must be locked in IX" — correct,
  but exclusively locking a node of shared data requires finding every
  referencing object by a **reverse-reference scan** over the database
  ("It is a very time-consuming task to find out which robots are
  affected") and locking each referencing object's whole chain.  The scan
  cost is accounted in ``Database.scan_cost`` and the extra locks in the
  plan, which is what benchmark E2 measures.

* :class:`NaiveDAGUnsafeProtocol` gives the rule up without a replacement
  — locks are placed along *one* access path only and implicit locks are
  trusted to cover referenced data.  This loses conflicts on
  "from-the-side" access: a second transaction reaching the shared node
  via another graph never sees the first one's implicit locks, "and the
  database could be transformed into an inconsistent state."  Test E3
  demonstrates the resulting lost update.
"""

from __future__ import annotations

from typing import List

from repro.graphs.units import ancestors, object_resource
from repro.locking.modes import IX, X, LockMode, intention_of
from repro.protocol.base import LockPlan, PlannedLock, ProtocolBase


class NaiveDAGProtocol(ProtocolBase):
    """Traditional DAG rules applied verbatim to the non-disjoint graph.

    Sub-object granules exist (like the paper's protocol), S requests need
    one parent path (rule: "at least one parent node ... in IS"), but X/IX
    requests on shared data must lock **all** parents, found by scanning.
    """

    name = "naive_dag"

    #: NOT plan-cacheable: the reverse-reference scan *is* this baseline's
    #: measured overhead (``Database.scan_cost``); memoizing its result
    #: would change the semantics the benchmarks exist to expose.
    plan_cacheable = False

    def plan_request(self, txn, resource, mode: LockMode, via=None) -> LockPlan:
        self._check_mode(mode)
        intention = intention_of(mode)
        steps: List[PlannedLock] = []
        for ancestor in ancestors(resource):
            steps.append(PlannedLock(ancestor, intention, "ancestor"))

        shared = len(resource) >= 4 and self.catalog.is_common_data(resource[2])
        if shared and mode in (X, IX):
            # All parents of a node within common data include every node
            # holding a reference to it, across the database: determine
            # them by a reverse scan (the expensive part) and IX-lock each
            # full chain down to the referencing node ("each single robot
            # (inclusive all its parent nodes) must be locked").
            from repro.graphs.units import component_resource

            target_object = self.units.resolve(resource[:4])
            referencing = self.catalog.database.scan_referencing(
                target_object.reference()
            )
            for obj, ref_steps in referencing:
                obj_resource = object_resource(self.catalog, obj.relation, obj.key)
                holder = component_resource(obj_resource, ref_steps)
                for ancestor in ancestors(holder):
                    steps.append(PlannedLock(ancestor, IX, "parent-chain"))
                steps.append(PlannedLock(holder, IX, "referencing-parent"))

        steps.append(PlannedLock(resource, mode, "target"))
        return self.finish_plan(txn, steps)


class NaiveDAGUnsafeProtocol(ProtocolBase):
    """The DAG protocol with the all-parents rule dropped and nothing added.

    Locks run along the single access path of the requesting query;
    references are *not* followed (the transaction trusts its implicit
    locks to cover the referenced data).  Cheap — and wrong on shared
    data: from-the-side access is not synchronized.
    """

    name = "naive_dag_unsafe"

    def plan_request(self, txn, resource, mode: LockMode, via=None) -> LockPlan:
        self._check_mode(mode)
        intention = intention_of(mode)
        steps: List[PlannedLock] = []
        for ancestor in ancestors(resource):
            steps.append(PlannedLock(ancestor, intention, "ancestor"))
        steps.append(PlannedLock(resource, mode, "target"))
        return self.finish_plan(txn, steps)
