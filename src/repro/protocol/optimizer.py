"""Determination of "optimal" lock requests (section 4.5, after HDKS89).

The companion paper's mechanism — sketched in section 4.5 — is the
*anticipation of lock escalations*: during query analysis (before any data
is touched) the optimizer predicts, from structural and statistical
information, how many fine-granule locks a query would accumulate, and
requests a coarser granule *in advance* whenever fine locking would later
escalate anyway.  This avoids the run-time cost and deadlock risk of
actual escalations while keeping granules "neither too coarse (data would
be blocked unnecessarily) nor too small (high overhead would result)".

Inputs are :class:`AccessIntent` records produced by the query analyzer:
which schema paths a query touches, whether it writes, and the estimated
selectivity at each collection level.  Output is a
:class:`~repro.graphs.query_graph.QuerySpecificLockGraph`.

Heuristic (per intent, walking from the object node toward the leaf):

1. if the expected *fraction* of elements accessed at a collection level
   reaches ``fraction_threshold``, cut here — the coarse lock blocks
   little extra data and saves many locks;
2. if the expected *number* of fine locks so far exceeds
   ``escalation_threshold`` (the lock manager's run-time escalation
   trigger), cut here — fine locking would escalate anyway;
3. otherwise descend one level and repeat; reaching the end of the path
   yields the finest (per accessed element / exact component) granule.

The same walk decides between relation-level and object-level locking
using the fraction of the relation's objects the query selects.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import QueryError
from repro.graphs.query_graph import LockAnnotation, QuerySpecificLockGraph
from repro.locking.modes import S, X, LockMode
from repro.nf2.paths import STAR, format_path, schema_path


class AccessIntent:
    """One attribute-path access a query will perform.

    ``path`` is a schema path below the object node (``()`` = the whole
    object); ``selectivities`` gives, for each ``*`` in the path in order,
    the estimated fraction of that collection's elements the query
    touches (default 1.0 = all).  ``object_selectivity`` is the fraction
    of the relation's objects selected (1.0 = full scan; a key-equality
    predicate should pass ``1 / object_count``).
    """

    def __init__(
        self,
        relation: str,
        path,
        write: bool = False,
        object_selectivity: float = 1.0,
        selectivities: Optional[Sequence[float]] = None,
    ):
        self.relation = relation
        self.path = schema_path(tuple(path))
        self.write = write
        if not 0.0 <= object_selectivity <= 1.0:
            raise QueryError("object selectivity must be in [0, 1]")
        self.object_selectivity = object_selectivity
        stars = sum(1 for step in self.path if step == STAR)
        if selectivities is None:
            selectivities = [1.0] * stars
        if len(selectivities) != stars:
            raise QueryError(
                "intent on %r has %d star level(s) but %d selectivities"
                % (format_path(self.path), stars, len(selectivities))
            )
        for value in selectivities:
            if not 0.0 < value <= 1.0:
                raise QueryError("selectivities must be in (0, 1]")
        self.selectivities = list(selectivities)

    @property
    def mode(self) -> LockMode:
        return X if self.write else S

    def __repr__(self):
        return "AccessIntent(%r, %r, %s)" % (
            self.relation,
            format_path(self.path),
            "write" if self.write else "read",
        )


class LockRequestOptimizer:
    """Chooses lock granules and modes by anticipating escalations."""

    def __init__(
        self,
        statistics,
        escalation_threshold: int = 10,
        fraction_threshold: float = 0.75,
        relation_fraction_threshold: float = 0.9,
    ):
        self.statistics = statistics
        self.escalation_threshold = escalation_threshold
        self.fraction_threshold = fraction_threshold
        self.relation_fraction_threshold = relation_fraction_threshold
        #: how many anticipated escalations the optimizer performed
        self.anticipated = 0

    def plan_query(self, intents: Iterable[AccessIntent]) -> Dict[str, QuerySpecificLockGraph]:
        """Produce one query-specific lock graph per accessed relation."""
        by_relation: Dict[str, List[AccessIntent]] = {}
        for intent in intents:
            by_relation.setdefault(intent.relation, []).append(intent)
        graphs = {}
        for relation, relation_intents in by_relation.items():
            annotations = self._plan_relation(relation, relation_intents)
            graphs[relation] = QuerySpecificLockGraph(relation, annotations)
        return graphs

    # -- internals -----------------------------------------------------------

    def _plan_relation(self, relation, intents) -> List[LockAnnotation]:
        object_count = max(1, self.statistics.object_count(relation))
        max_object_selectivity = max(i.object_selectivity for i in intents)
        any_write = any(i.write for i in intents)

        # Relation vs object level: a query selecting (nearly) all objects
        # should lock the relation once instead of each object — but only
        # when that actually saves locks (≥2 objects expected); escalating
        # a single-object selection gains nothing and needlessly blocks
        # the rest of the relation.
        if (
            max_object_selectivity >= self.relation_fraction_threshold
            and max_object_selectivity * object_count >= 2.0
        ):
            self.anticipated += 1
            mode = X if any_write else S
            return [
                LockAnnotation(
                    (),
                    mode,
                    reason="anticipated escalation: %.0f%% of relation selected"
                    % (100 * max_object_selectivity),
                    relation_level=True,
                )
            ]

        expected_objects = max(1.0, max_object_selectivity * object_count)
        annotations: List[LockAnnotation] = []
        for intent in intents:
            annotations.append(
                self._plan_intent(relation, intent, expected_objects)
            )
        return _subsume(annotations)

    def _plan_intent(self, relation, intent, expected_objects) -> LockAnnotation:
        """Walk the path from the object node down; cut where anticipation says."""
        if expected_objects > self.escalation_threshold:
            # Even object-level locks would escalate: one lock per object
            # is the floor granularity below relation level; keep objects
            # (escalating to relation level is handled by the caller) but
            # record the pressure.
            pass
        path = intent.path
        expected_count = expected_objects
        star_index = 0
        for cut in range(len(path)):
            step = path[cut]
            if step != STAR:
                continue
            fanout = self.statistics.estimate_fanout(relation, path[:cut])
            selectivity = intent.selectivities[star_index]
            star_index += 1
            fraction = selectivity
            next_count = expected_count * max(1.0, fanout * selectivity)
            if fraction >= self.fraction_threshold:
                self.anticipated += 1
                return LockAnnotation(
                    path[:cut],
                    intent.mode,
                    reason="anticipated escalation: %.0f%% of elements accessed"
                    % (100 * fraction),
                )
            if next_count > self.escalation_threshold:
                self.anticipated += 1
                return LockAnnotation(
                    path[:cut],
                    intent.mode,
                    reason="anticipated escalation: ~%d fine locks expected"
                    % int(next_count),
                )
            expected_count = next_count
        return LockAnnotation(path, intent.mode, reason="fine granule")


def _subsume(annotations: List[LockAnnotation]) -> List[LockAnnotation]:
    """Drop annotations covered by a coarser one with a covering mode."""
    from repro.locking.modes import covers

    kept: List[LockAnnotation] = []
    for candidate in annotations:
        covered = False
        for other in annotations:
            if other is candidate:
                continue
            if len(other.path) <= len(candidate.path) and (
                candidate.path[: len(other.path)] == other.path
            ):
                if covers(other.mode, candidate.mode) and (
                    len(other.path) < len(candidate.path)
                    or (other.mode != candidate.mode)
                ):
                    covered = True
                    break
        if not covered and not any(
            k.path == candidate.path and k.mode == candidate.mode for k in kept
        ):
            kept.append(candidate)
    return kept
