"""The paper's lock protocol (section 4.4.2.1, rules 1-5 and 4').

One logical demand — "lock this granule in this mode" — expands into the
explicit requests of the rules:

* **ancestors** (rules 1/2): every immediate parent up to the root of the
  requested node's unit — and, for inner units, of the *superunit* — is
  locked in the matching intention mode ("implicit upward propagation");
* **via-reference check**: when an entry point is reached through a
  reference (``via=`` the referencing node), that node must already be
  locked, at least in intention mode, by the transaction (explicitly or
  implicitly);
* **implicit downward propagation** (rules 3/4/4'): before S or X is
  granted on any node, every entry point of a lower inner unit accessible
  via that node is locked — S for an S demand; for an X demand, X on
  modifiable inner units and S on non-modifiable ones when rule 4' is
  active (the authorization-oriented solution), plain X otherwise;
* the **target** lock is granted last, exactly as in the paper's worked
  example ("As soon as all these locks are granted ... the X lock on
  'robot r1' was granted").

Order of requests is root-to-leaf (rule 5); release is leaf-to-root or at
end of transaction, handled by the transaction manager.
"""

from __future__ import annotations

from typing import List, Optional

from repro.catalog.authorization import DEFAULT_RIGHTS, principal_of
from repro.errors import AuthorizationError, ProtocolError
from repro.graphs.units import ancestors
from repro.locking.modes import IX, S, X, LockMode, intention_of
from repro.protocol.base import LockPlan, PlannedLock, ProtocolBase


class HerrmannProtocol(ProtocolBase):
    """Lock protocol for disjoint and non-disjoint complex objects.

    Parameters
    ----------
    manager, catalog:
        lock manager and catalog (see :class:`ProtocolBase`).
    authorization:
        optional :class:`~repro.catalog.authorization.AuthorizationManager`;
        required for ``rule4prime``.
    rule4prime:
        apply the authorization-aware variant of rule 4 (default True when
        an authorization manager is supplied).
    transitive_propagation:
        follow references inside referenced objects too (common data may
        again contain common data, section 2).  Default True.
    """

    name = "herrmann"

    def __init__(
        self,
        manager,
        catalog,
        authorization=None,
        rule4prime: Optional[bool] = None,
        transitive_propagation: bool = True,
        **kwargs,
    ):
        super().__init__(manager, catalog, authorization=authorization, **kwargs)
        if rule4prime is None:
            rule4prime = authorization is not None
        if rule4prime and authorization is None:
            raise ProtocolError("rule 4' needs an authorization manager")
        self.rule4prime = rule4prime
        self.transitive_propagation = transitive_propagation

    # -- planning ---------------------------------------------------------------

    def plan_request(
        self, txn, resource, mode: LockMode, via=None, propagate: bool = True
    ) -> LockPlan:
        """Expand one demand into the rule-mandated explicit requests.

        ``propagate=False`` applies the semantic refinement of the last
        paragraph of section 4.5: an operation that treats references as
        opaque values (e.g. deleting a robot without touching its
        effectors) "needs no locks on common data at all", so downward
        propagation is skipped.  The caller asserts reference
        transparency; the rules themselves are unchanged.
        """
        self._check_mode(mode)
        self._check_authorization(txn, resource, mode)
        intention = intention_of(mode)
        unit_root = self.units.unit_root(resource)
        entry_point = self.units.is_entry_point(unit_root)

        # The via-check is transaction-dependent (it consults the caller's
        # held locks), so it runs on every demand — cache hit or not.
        if (
            entry_point
            and via is not None
            and not self.effectively_holds(txn, via, intention)
        ):
            raise ProtocolError(
                "referencing node %r must be (at least) %s locked before "
                "entry point %r may be requested" % (via, intention, resource)
            )

        # Step expansion depends on the graph/schema (covered by the
        # stamp), the demand itself and — under rule 4', via the
        # can_modify answers baked into propagated modes — the principal.
        # Principals without explicit grants all get the default answers,
        # so they share one key (the raw principal would be the transaction
        # object for anonymous transactions: one dead entry per txn).
        principal = None
        if self.rule4prime:
            principal = principal_of(txn)
            if not self.authorization.is_restricted(principal):
                principal = DEFAULT_RIGHTS
        key = (resource, mode, propagate, principal)
        merged = self.compiled_steps(
            key,
            lambda: self._raw_steps(
                txn, resource, mode, unit_root, entry_point, propagate
            ),
        )
        return self.filter_plan(txn, merged)

    def _raw_steps(
        self, txn, resource, mode: LockMode, unit_root, entry_point, propagate
    ) -> List[PlannedLock]:
        steps: List[PlannedLock] = []
        intention = intention_of(mode)
        if entry_point:
            # Inner-unit node: implicit upward propagation — the immediate
            # parents of the requested node, up to the root of the
            # superunit (rules 1/2/3/4, entry-point case).
            for ancestor in self.units.superunit_path(unit_root):
                steps.append(PlannedLock(ancestor, intention, "upward"))
            for ancestor in ancestors(resource):
                if len(ancestor) >= len(unit_root):
                    steps.append(PlannedLock(ancestor, intention, "ancestor"))
        else:
            # Outer-unit node: rule 1/2 — the root of the outer unit needs
            # no prior locks; every non-root node needs its immediate
            # parents intention-locked.  Planning the whole chain from the
            # database node down achieves exactly that.
            for ancestor in ancestors(resource):
                steps.append(PlannedLock(ancestor, intention, "ancestor"))

        # S, X and the semantic actual modes (SI/AP/INC) implicitly lock
        # the whole subtree, so all of them propagate onto lower entry
        # points; pure intention modes never do.
        if propagate and (
            mode in (S, X) or (mode.is_semantic and not mode.is_intention)
        ):
            steps.extend(self._downward_steps(txn, resource, mode))

        steps.append(PlannedLock(resource, mode, "target"))
        return steps

    def _downward_steps(self, txn, resource, mode: LockMode) -> List[PlannedLock]:
        """Implicit downward propagation onto lower entry points."""
        if len(resource) < 3:
            # S/X on database or segment: the paper's graphs never request
            # these below-intention modes above relation level during
            # normal processing; treat the whole database as one unit and
            # propagate to every common-data object would be prohibitive —
            # but correctness demands it, so we do propagate from relation
            # level down. Database/segment S/X locks fall back to locking
            # every relation's entry points.
            entry_points = []
            for relation in self.catalog.relation_names():
                schema = self.catalog.schema(relation)
                rel_resource = (
                    self.catalog.database.name,
                    schema.segment,
                    relation,
                )
                if rel_resource[: len(resource)] == resource:
                    entry_points.extend(
                        self.units.entry_points_below(
                            rel_resource, transitive=self.transitive_propagation
                        )
                    )
        else:
            entry_points = self.units.entry_points_below(
                resource, transitive=self.transitive_propagation
            )
        steps: List[PlannedLock] = []
        ancestor_set = set(ancestors(resource))
        for entry in entry_points:
            if entry == resource or entry in ancestor_set:
                continue
            entry_mode = self._propagated_mode(txn, entry, mode)
            entry_intention = intention_of(entry_mode)
            for ancestor in self.units.superunit_path(entry):
                steps.append(PlannedLock(ancestor, entry_intention, "downward-path"))
            steps.append(PlannedLock(entry, entry_mode, "downward"))
        return steps

    def _propagated_mode(self, txn, entry_resource, mode: LockMode) -> LockMode:
        """Mode pushed onto a lower entry point (rule 3, 4 or 4')."""
        if mode is S:
            return S
        if mode.is_semantic:
            # a commuting-update claim extends unchanged into reachable
            # common data: other inserters/appenders/incrementers stay
            # admissible there, readers and general writers do not
            return mode
        if not self.rule4prime:
            return X  # rule 4: X propagates X everywhere
        relation_name = entry_resource[2]
        if self.authorization.can_modify(txn, relation_name):
            return X
        return S  # rule 4': least restrictive mode that is still safe

    def _check_authorization(self, txn, resource, mode: LockMode):
        """An (I)X demand on a relation's data needs the modify right."""
        if not self.rule4prime:
            return
        # semantic modes are update modes: commuting or not, an insert/
        # append/increment (or the intention to perform one) needs the
        # modify right exactly as X/IX do
        if mode not in (X, IX) and not mode.is_semantic:
            return
        if len(resource) < 3:
            return
        # index units ("relation#attr") carry their relation's rights
        relation_name = resource[2].split("#", 1)[0]
        if not self.authorization.can_modify(txn, relation_name):
            raise AuthorizationError(
                "transaction %r requested %s on %r without modify right on %r"
                % (txn, mode, resource, relation_name)
            )
