"""Common machinery of all lock protocols.

A protocol turns one *logical* lock demand ("X on robot r1 of cell c1")
into an ordered **lock plan**: the explicit lock requests to submit to the
lock manager, root-to-leaf (rule 5).  Planning is separated from execution
so that

* the synchronous API (`request`) can run plans directly (tests, examples,
  threaded use), and
* the discrete-event simulator can execute plans stepwise, suspending a
  transaction while any step waits.

The base class also implements *implicit lock* visibility (section 3.1):
a node is implicitly locked in S when an ancestor within the same unit
holds S/SIX/X, and implicitly in X when the ancestor holds X.  Implicit
locks never cross dashed (reference) edges — that blindness is exactly the
protocol-oriented problem of section 3.2.2 which the paper's protocol
fixes with downward propagation.
"""

from __future__ import annotations

from array import array
from typing import List, Tuple

from repro.errors import ProtocolError
from repro.graphs.units import UnitMap, ancestors
from repro.locking.dense import DENSE_CORE, DenseLockTable, DenseSteps, core
from repro.locking.manager import LockManager
from repro.locking.modes import (
    COVERS_FLAT,
    N_MODES,
    IS,
    IX,
    S,
    SIX,
    X,
    LockMode,
    covers,
)
from repro.locking.plancache import PlanCache


class PlannedLock:
    """One step of a lock plan."""

    __slots__ = ("resource", "mode", "reason")

    def __init__(self, resource: Tuple, mode: LockMode, reason: str = ""):
        self.resource = resource
        self.mode = mode
        #: provenance: "target", "ancestor", "upward", "downward", ...
        self.reason = reason

    def __repr__(self):
        return "PlannedLock(%r, %s, %s)" % (self.resource, self.mode, self.reason)

    def __eq__(self, other):
        return (
            isinstance(other, PlannedLock)
            and self.resource == other.resource
            and self.mode == other.mode
        )


class LockPlan:
    """An ordered sequence of lock requests for one logical demand."""

    def __init__(self, steps: List[PlannedLock]):
        self.steps = steps

    def __iter__(self):
        return iter(self.steps)

    def __len__(self):
        return len(self.steps)

    def resources(self) -> List[Tuple]:
        return [step.resource for step in self.steps]

    def __repr__(self):
        return "LockPlan(%r)" % (self.steps,)


#: reasons marking steps that exist only because of implicit propagation
#: (rules 3/4/4' downward, superunit upward) — recorded as the third flat
#: array of a densified plan so dense consumers can distinguish them
PROPAGATION_REASONS = frozenset(("downward", "downward-path", "upward"))


class DenseLockPlan:
    """A filtered plan addressed by index into its compiled dense arrays.

    Built by the dense branch of :meth:`ProtocolBase.filter_plan`:
    ``keep`` indexes the surviving steps of the cached merged tuple.  The
    object-plan API (iteration over :class:`PlannedLock`, ``len``,
    ``resources``) materializes lazily from the shared merged steps — the
    simulator, scheduler and trace wrappers see exactly the objects the
    object path would hand them.  :meth:`dense_steps` exposes the same
    selection as int arrays for the batched dense table pass, copy-free.
    """

    __slots__ = ("_rids", "_codes", "_keep", "_interner", "_merged", "_steps")

    def __init__(self, rids, codes, keep, interner, merged):
        self._rids = rids
        self._codes = codes
        self._keep = keep
        self._interner = interner
        self._merged = merged
        self._steps = None

    @property
    def steps(self) -> List[PlannedLock]:
        if self._steps is None:
            merged = self._merged
            self._steps = [merged[i] for i in self._keep]
        return self._steps

    def __iter__(self):
        return iter(self.steps)

    def __len__(self):
        return len(self._keep)

    def resources(self) -> List[Tuple]:
        merged = self._merged
        return [merged[i].resource for i in self._keep]

    def dense_steps(self) -> DenseSteps:
        return DenseSteps(self._rids, self._codes, self._interner, self._keep)

    def __repr__(self):
        return "DenseLockPlan(%r)" % (self.steps,)


class ProtocolBase:
    """Shared services: plan execution, implicit-lock checks, metrics."""

    #: subclass marker used in benchmark reports
    name = "base"

    #: whether this protocol's demand expansion is a pure function of the
    #: object graph / schema / principal (False where the *work* of
    #: planning is semantic, e.g. the naive DAG reverse scan whose cost is
    #: the benchmarked quantity)
    plan_cacheable = True

    def __init__(
        self,
        manager: LockManager,
        catalog,
        authorization=None,
        use_plan_cache: bool = False,
        use_batched_acquire: bool = False,
        use_dense_path: bool = False,
        use_semantic_modes: bool = False,
    ):
        self.manager = manager
        self.catalog = catalog
        self.units = UnitMap(catalog)
        self.authorization = authorization
        #: ablation flag: accept the commutativity-aware semantic modes
        #: (SI/AP/INC and their intentions).  Off by default: the classic
        #: protocol must be bit-identical to the pre-extension behaviour.
        self.use_semantic_modes = use_semantic_modes
        #: ablation flag: memoize compiled demand expansions (stamped by
        #: the database structure / authorization versions)
        self.use_plan_cache = use_plan_cache
        #: ablation flag: submit whole plans to the lock table in one pass
        self.use_batched_acquire = use_batched_acquire
        #: ablation flag: filter and execute cached plans as flat int
        #: arrays against the dense lock table (implies batched
        #: submission of the dense plan; falls back to the object path
        #: for uncached demands or a non-dense table)
        self.use_dense_path = use_dense_path
        self.plan_cache = PlanCache()
        self._dense_table = (
            manager.table
            if use_dense_path and isinstance(manager.table, DenseLockTable)
            else None
        )
        #: the CompiledPlan the most recent compiled_steps() call resolved
        #: — filter_plan pairs it with its merged tuple by identity, so a
        #: stale value (demand aborted mid-planning) is never misused
        self._active_plan = None
        #: optional :class:`repro.faults.FaultInjector`; fires the
        #: ``plan.expand`` point on every demand's plan filtering and
        #: ``plan.execute`` before the plan's lock requests are submitted
        self.fault_injector = None
        #: explicit lock requests issued through this protocol instance
        self.locks_requested = 0
        #: logical demands served
        self.demands = 0

    # -- to be provided by subclasses ------------------------------------------

    def plan_request(self, txn, resource, mode, via=None) -> LockPlan:
        raise NotImplementedError

    # -- plan execution -----------------------------------------------------------

    def request(self, txn, resource, mode, via=None, wait=False, long=False):
        """Plan and execute a lock demand synchronously.

        Steps already covered by held locks are re-requested cheaply (the
        lock table grants a covered re-request immediately); a conflicting
        step with ``wait=False`` raises LockConflictError, leaving earlier
        steps granted (the transaction abort path releases them).
        Returns the list of granted requests.
        """
        plan = self.plan_request(txn, resource, mode, via=via)
        return self.execute_plan(txn, plan, wait=wait, long=long)

    def execute_plan(self, txn, plan: LockPlan, wait=False, long=False):
        self.demands += 1
        if self.fault_injector is not None:
            # before any step is submitted: a raise here aborts the demand
            # with no partially acquired prefix at all
            self.fault_injector.fire("plan.execute", txn=txn, steps=len(plan))
        if isinstance(plan, DenseLockPlan):
            # The dense pass subsumes batching: the selection is handed to
            # the table as int arrays (copy-free) and pruned/granted in one
            # traversal over the int summary and flat mode tables.
            granted = self.manager.acquire_many(
                txn, plan.dense_steps(), long=long, wait=wait
            )
            self.locks_requested += len(granted)
            return granted
        if self.use_batched_acquire:
            # One table pass for the whole plan: covered steps are pruned
            # against the per-transaction held-mode summary, the compatible
            # prefix is granted in a single traversal, and at most the last
            # returned request is WAITING (one deadlock check per demand).
            granted = self.manager.acquire_many(
                txn,
                [(step.resource, step.mode) for step in plan],
                long=long,
                wait=wait,
            )
            self.locks_requested += len(granted)
            return granted
        granted = []
        for step in plan:
            self.locks_requested += 1
            request = self.manager.acquire(
                txn, step.resource, step.mode, long=long, wait=wait
            )
            granted.append(request)
            if not request.granted:
                # Simulator mode: caller must wait for this request before
                # continuing the plan.
                break
        return granted

    def release_all(self, txn, keep_long: bool = False):
        return self.manager.release_all(txn, keep_long=keep_long)

    def release_early(self, txn, resource):
        """Release one lock before end of transaction (rule 5).

        Rule 5 permits early release only "in leaf-to-root order": a node
        may be released only when the transaction holds no lock on any of
        its descendants (otherwise those would lose their intention
        cover).  Violations raise :class:`~repro.errors.ProtocolError`.
        Early release trades 2PL guarantees for concurrency — callers own
        that decision; the transaction manager never does this.
        """
        held = self.manager.held_mode(txn, resource)
        if held is None:
            raise ProtocolError("%r holds no lock on %r" % (txn, resource))
        depth = len(resource)
        for other in self.manager.table.resources_of(txn):
            if len(other) > depth and other[:depth] == resource:
                raise ProtocolError(
                    "leaf-to-root release violated: %r still holds %r "
                    "below %r" % (txn, other, resource)
                )
        woken = []
        while self.manager.held_mode(txn, resource) is not None:
            woken.extend(self.manager.release(txn, resource))
        return woken

    def explain(self, txn, resource, mode, via=None):
        """Human-readable rendering of a lock plan (the style of the
        paper's worked example in section 4.4.2.2)."""
        plan = self.plan_request(txn, resource, mode, via=via)
        lines = []
        for step in plan:
            lines.append(
                "%-4s on %-55s (%s)"
                % (step.mode, "/".join(str(p) for p in step.resource), step.reason)
            )
        return lines

    # -- implicit-lock visibility -------------------------------------------------

    def effectively_holds(self, txn, resource, required: LockMode) -> bool:
        """Does ``txn`` hold ``resource`` in ``required``, counting implicit locks?

        Explicit locks count via the restrictiveness order; implicit locks
        derive from ancestors *within the same unit* (never across dashed
        edges): an ancestor S/SIX/X lock implicitly S-locks the subtree, an
        ancestor X lock implicitly X-locks it.
        """
        held = self.manager.held_mode(txn, resource)
        if held is not None and covers(held, required):
            return True
        unit_root = self.units.unit_root(resource)
        for ancestor in ancestors(resource):
            # Only ancestors inside the same unit propagate implicit locks;
            # above the unit root there are only intention locks anyway.
            if len(ancestor) < len(unit_root):
                continue
            ancestor_mode = self.manager.held_mode(txn, ancestor)
            if ancestor_mode is None:
                continue
            if ancestor_mode is X and covers(X, required):
                return True
            if ancestor_mode in (S, SIX, X) and covers(S, required):
                return True
            # a semantic actual mode (SI/AP/INC) implicitly claims its
            # commuting operation class over the whole subtree, exactly
            # as S implicitly S-locks it
            if (
                ancestor_mode.is_semantic
                and not ancestor_mode.is_intention
                and covers(ancestor_mode, required)
            ):
                return True
        return False

    def visible_mode_for_others(self, resource) -> List[Tuple[object, LockMode]]:
        """All (txn, mode) pairs that lock ``resource`` explicitly or implicitly.

        This is the conflict-visibility question of section 3.2.2: a
        correct protocol must make every lock on shared data *visible* to
        transactions arriving via other graphs.  Used by tests to prove
        the unsafe baseline loses visibility and the paper's protocol does
        not.
        """
        found = list(self.manager.holders(resource).items())
        unit_root = self.units.unit_root(resource)
        for ancestor in ancestors(resource):
            if len(ancestor) < len(unit_root):
                continue
            for txn, mode in self.manager.holders(ancestor).items():
                if mode in (S, SIX, X):
                    implicit = X if mode is X else S
                    found.append((txn, implicit))
                elif mode.is_semantic and not mode.is_intention:
                    # SI/AP/INC implicitly hold themselves over the subtree
                    found.append((txn, mode))
        return found

    # -- shared planning helpers ------------------------------------------------------

    def finish_plan(self, txn, steps: List[PlannedLock]) -> LockPlan:
        """Deduplicate a raw step list into an executable plan.

        A resource planned twice keeps its earliest position with the
        supremum of all requested modes (a stronger mode earlier is always
        safe); steps the transaction already covers explicitly are dropped
        so repeated demands stay cheap and plans match the figures.
        """
        return self.filter_plan(txn, self.merge_steps(steps))

    def merge_steps(self, steps: List[PlannedLock]) -> Tuple[PlannedLock, ...]:
        """Merge duplicates: earliest position, supremum of modes.

        This is the transaction-*independent* half of plan finishing — its
        output is what the plan cache stores and shares across callers.
        """
        from repro.locking.modes import supremum

        merged: List[PlannedLock] = []
        position = {}
        for step in steps:
            if step.resource in position:
                index = position[step.resource]
                merged[index] = PlannedLock(
                    step.resource,
                    supremum(merged[index].mode, step.mode),
                    merged[index].reason,
                )
                continue
            position[step.resource] = len(merged)
            merged.append(step)
        return tuple(merged)

    def filter_plan(self, txn, merged) -> LockPlan:
        """Drop merged steps the transaction already covers explicitly.

        The transaction-*dependent* half: runs on every demand (cache hit
        or not) against the caller's current held locks — one O(1)
        held-mode probe per step.  Never mutates ``merged`` (cached step
        tuples are shared).
        """
        if self.fault_injector is not None:
            # mid-propagation: the demand is expanded and merged but not
            # yet turned into lock requests — nothing to clean up on raise
            self.fault_injector.fire("plan.expand", txn=txn, steps=len(merged))
        table = self._dense_table
        compiled = self._active_plan
        if (
            table is not None
            and compiled is not None
            and compiled.steps is merged
        ):
            # Dense branch: one flat int pass over the plan's compiled
            # arrays against the int-keyed held summary — no tuple hashes,
            # no enum members, no per-step allocation.  Same survivors as
            # the holds_at_least loop below (the summaries are twins).
            dense = compiled.dense
            if dense is None:
                dense = compiled.dense = self._dense_arrays(merged)
            keep = core.filter_uncovered(
                dense[0],
                dense[1],
                table.dense_summary(txn),
                COVERS_FLAT,
                N_MODES,
            )
            return DenseLockPlan(dense[0], dense[1], keep, table.interner, merged)
        holds_at_least = self.manager.holds_at_least
        return LockPlan(
            [
                step
                for step in merged
                if not holds_at_least(txn, step.resource, step.mode)
            ]
        )

    def _dense_arrays(self, merged) -> tuple:
        """Recompile merged steps into parallel flat arrays.

        Returns ``(resource-ids, mode codes, propagate flags)`` — ids from
        the dense table's interner (registration on first compile), codes
        from the stamped enum members, flags marking propagation-origin
        steps (:data:`PROPAGATION_REASONS`).
        """
        interner = self._dense_table.interner
        rids = array("q", (interner.intern(step.resource) for step in merged))
        codes = array("b", (step.mode.code for step in merged))
        flags = array(
            "b",
            (
                1 if step.reason in PROPAGATION_REASONS else 0
                for step in merged
            ),
        )
        return (rids, codes, flags)

    def compiled_steps(self, key: tuple, build) -> Tuple[PlannedLock, ...]:
        """Merged steps for a demand, via the plan cache when enabled.

        ``build()`` computes the raw step list; ``key`` must capture every
        plan-shaping input apart from the world state the stamp covers —
        target resource, mode, propagation options and (under rule 4') the
        requesting principal.  Disabled or uncacheable protocols just
        merge.
        """
        if not (self.use_plan_cache and self.plan_cacheable):
            self._active_plan = None
            return self.merge_steps(build())
        stamp = self.plan_stamp()
        plan = self.plan_cache.lookup_plan(key, stamp)
        if plan is None:
            steps = self.merge_steps(build())
            plan = self.plan_cache.store(key, stamp, steps)
        self._active_plan = plan
        return plan.steps

    def plan_stamp(self) -> tuple:
        """Version stamp of every world state compiled plans depend on.

        The database structure version moves on insert/delete/replace/
        restore, component writes (``notify_object_changed`` — which undo
        actions and check-in also run through) and relation/index creation;
        the authorization version moves on grant/revoke.  Any bump
        invalidates all cached plans by stamp mismatch.
        """
        database = self.catalog.database
        auth = self.authorization
        return (
            database.structure_version,
            -1 if auth is None else auth.version,
        )

    def _ancestor_steps(self, txn, resource, intention: LockMode) -> List[PlannedLock]:
        """Intention locks on all ancestors, root first (rules 1-2)."""
        steps = []
        for ancestor in ancestors(resource):
            steps.append(PlannedLock(ancestor, intention, "ancestor"))
        return steps

    def _check_mode(self, mode: LockMode):
        if mode in (IS, IX, S, X, SIX):
            return
        if mode.is_semantic and self.use_semantic_modes:
            return
        raise ProtocolError("unsupported lock mode %r" % (mode,))

    def metrics(self) -> dict:
        out = {
            "protocol": self.name,
            "demands": self.demands,
            "locks_requested": self.locks_requested,
            "locks_per_demand": (
                round(self.locks_requested / self.demands, 4)
                if self.demands
                else 0.0
            ),
            "use_plan_cache": self.use_plan_cache,
            "use_batched_acquire": self.use_batched_acquire,
            "use_dense_path": self.use_dense_path,
            "use_semantic_modes": self.use_semantic_modes,
            "dense_core": DENSE_CORE if self._dense_table is not None else "",
            "summary_rebuilds": self.manager.table.summary_rebuilds,
        }
        out.update(self.plan_cache.stats())
        return out

    def reset_metrics(self):
        self.demands = 0
        self.locks_requested = 0
        self.plan_cache.reset_stats()
