"""Lock protocols: the paper's technique and its baselines, plus the
query-time lock-request optimizer."""

from repro.protocol.base import LockPlan, PlannedLock, ProtocolBase
from repro.protocol.herrmann import HerrmannProtocol
from repro.protocol.naive_dag import NaiveDAGProtocol, NaiveDAGUnsafeProtocol
from repro.protocol.optimizer import AccessIntent, LockRequestOptimizer
from repro.protocol.system_r import (
    SystemRRelationProtocol,
    SystemRTupleProtocol,
    tuple_resources_below,
)
from repro.protocol.xsql import XSQLProtocol

#: All comparable protocol classes, keyed by their report name.
PROTOCOLS = {
    cls.name: cls
    for cls in (
        HerrmannProtocol,
        SystemRTupleProtocol,
        SystemRRelationProtocol,
        XSQLProtocol,
        NaiveDAGProtocol,
        NaiveDAGUnsafeProtocol,
    )
}

__all__ = [
    "AccessIntent",
    "HerrmannProtocol",
    "LockPlan",
    "LockRequestOptimizer",
    "NaiveDAGProtocol",
    "NaiveDAGUnsafeProtocol",
    "PROTOCOLS",
    "PlannedLock",
    "ProtocolBase",
    "SystemRRelationProtocol",
    "SystemRTupleProtocol",
    "XSQLProtocol",
    "tuple_resources_below",
]
