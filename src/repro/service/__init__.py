"""The served lock system: sharded lock tables behind an asyncio front-end.

This package promotes the in-process lock technique to a *system*:

* :mod:`repro.service.sharded` — :class:`ShardedLockManager`, a drop-in
  :class:`~repro.locking.manager.LockManager` replacement that partitions
  the lock table by interned resource id into N independent shards;
* :mod:`repro.service.server` — :class:`LockServer`, an asyncio line-
  protocol server (START / SLOCK / XLOCK / ISLOCK / IXLOCK /
  ACQUIRE_MANY / UNLOCK / END / STATS) over a sharded stack, with
  per-shard mutexes, cross-shard deadlock detection and fault injection;
* :mod:`repro.service.client` — an async client plus the many-client
  load generator behind ``repro-load``;
* :mod:`repro.service.cli` — the ``repro-serve`` / ``repro-load``
  console entry points.

See ``docs/SERVICE.md`` for the wire protocol and the shard-routing
rule, and ``tests/service/`` for the conformance/property/fault suites
that certify the server.
"""

from repro.service.sharded import ShardedLockManager, shard_of

__all__ = ["ShardedLockManager", "shard_of"]
