"""``repro-serve`` and ``repro-load`` console entry points."""

from __future__ import annotations

import argparse
import asyncio
import json
import sys


def serve_main(argv=None) -> int:
    """Serve a sharded lock stack over the line protocol."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve a sharded lock stack over the asyncio line protocol.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7457)
    parser.add_argument(
        "--shards", type=int, default=4, help="lock-table shard count"
    )
    parser.add_argument(
        "--workload",
        choices=("cells", "partlib"),
        default="cells",
        help="database to serve",
    )
    parser.add_argument(
        "--service-time",
        type=float,
        default=0.0,
        help="per-request service latency charged inside the shard mutex (s)",
    )
    parser.add_argument(
        "--lock-timeout",
        type=float,
        default=5.0,
        help="seconds a lock wait may park before ERR TIMEOUT",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="shard worker processes (0 = in-process shard tables)",
    )
    parser.add_argument(
        "--no-coalesce",
        action="store_true",
        help="flush each response individually instead of per ready-batch",
    )
    parser.add_argument(
        "--semantic-modes",
        action="store_true",
        help="accept the commutativity-aware lock modes (SI/AP/INC verbs, "
        "mode codes 5-10; off = classic five-mode vocabulary)",
    )
    args = parser.parse_args(argv)

    from repro.service.server import LockServer, make_service_stack

    stack = make_service_stack(
        args.workload,
        shards=args.shards,
        workers=args.workers,
        use_semantic_modes=args.semantic_modes,
    )
    server = LockServer(
        stack,
        host=args.host,
        port=args.port,
        shard_service_time=args.service_time,
        lock_timeout=args.lock_timeout,
        coalesce_writes=not args.no_coalesce,
    )

    async def _serve():
        host, port = await server.start()
        print(
            "repro-serve: %s workload, %d shards, %d workers, "
            "listening on %s:%d"
            % (args.workload, args.shards, args.workers, host, port),
            flush=True,
        )
        assert server._server is not None
        try:
            async with server._server:
                await server._server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def load_main(argv=None) -> int:
    """Drive concurrent load clients against a running repro-serve."""
    parser = argparse.ArgumentParser(
        prog="repro-load",
        description="Load-generate against a running repro-serve instance.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7457)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--duration", type=float, default=5.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workload",
        choices=("cells", "partlib"),
        default="cells",
        help="workload whose object paths to lock (must match the server)",
    )
    parser.add_argument(
        "--txn-locks", type=int, default=3, help="lock demands per transaction"
    )
    parser.add_argument(
        "--write-ratio", type=float, default=0.2, help="fraction of XLOCKs"
    )
    parser.add_argument(
        "--binary",
        action="store_true",
        help="use the binary wire protocol (HELLO BINARY upgrade)",
    )
    parser.add_argument(
        "--pipeline-depth",
        type=int,
        default=1,
        help="requests in flight per connection (>1 requires --binary)",
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        default=None,
        help="also write the report as JSON ('-' for stdout)",
    )
    args = parser.parse_args(argv)

    from repro.service.client import run_load

    report = asyncio.run(
        run_load(
            args.host,
            args.port,
            clients=args.clients,
            duration=args.duration,
            seed=args.seed,
            workload=args.workload,
            txn_locks=args.txn_locks,
            write_ratio=args.write_ratio,
            binary=args.binary,
            pipeline_depth=args.pipeline_depth,
        )
    )
    latency = report["latency_ms"]
    print(
        "repro-load: %d clients x %.1fs (%s, depth %d) -> %d OK / %d ERR, "
        "%.1f req/s, latency p50=%.3fms p95=%.3fms p99=%.3fms"
        % (
            report["clients"],
            report["duration"],
            "binary" if report["binary"] else "text",
            report["pipeline_depth"],
            report["ok"],
            report["err"],
            report["req_per_sec"],
            latency["p50"],
            latency["p95"],
            latency["p99"],
        )
    )
    if args.json:
        payload = json.dumps(report, indent=2, sort_keys=True)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w") as handle:
                handle.write(payload + "\n")
    return 0 if report["ok"] > 0 else 1


if __name__ == "__main__":
    sys.exit(serve_main())
