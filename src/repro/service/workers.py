"""Multiprocess shard workers: lock tables that escape the GIL.

``repro-serve --workers K`` partitions the N shard tables across K
worker *processes* instead of K objects on the router's event loop.
Each worker owns the shards ``{s : s % K == worker_index}`` as plain
:class:`~repro.locking.lock_table.LockTable` instances keyed by dense
interned resource ids, and runs a synchronous request/response loop over
a ``multiprocessing.Pipe``: grant scans, conversion lattice work and
queue processing all happen off the router's interpreter.

The router keeps the brains:

* :class:`WorkerProxyManager` implements the ``LockManager`` call
  surface the server, the transaction manager and the lock trace expect
  (``acquire`` / ``acquire_many`` / ``release`` / ``release_all`` /
  ``cancel`` / ``on_wake`` / ``table`` / ``detector``), translating
  resources to rids and driving the owning worker over its pipe.  Every
  RPC is strictly blocking request/response — the asyncio server calls
  the proxy through ``run_in_executor``, so worker round-trips never
  stall the event loop;
* the **interner snapshot** is shipped to each worker at fork and
  extended append-only over the same pipe (an ``extend`` control message
  precedes any rid the worker has not seen), mirroring the router
  interner's growth;
* **cross-shard deadlock detection** runs in the router: workers dump
  serialized waits-for edges (transaction *names* — the only identity
  that crosses the process boundary) and the stock
  :class:`~repro.locking.deadlock.DeadlockDetector` finds cycles over
  the union graph, memoized on the summed per-shard versions exactly as
  in-process sharding does.

Semantics are bit-identical to :class:`ShardedLockManager` by
construction: workers run the *real* ``LockTable`` code (``request_many``
with covered-pair pruning, ``_release_resource`` in the router's global
first-grant order, FIFO queues and the conversion lattice), and the wire
differential certifies identical lock traces on every check workload.

Wake notifications need no extra channel: workers are passive, so every
grant of a queued request happens inside some release/cancel RPC and
rides back on that RPC's reply.
"""

from __future__ import annotations

import multiprocessing
import threading
from typing import Dict, List, Optional, Tuple

from repro.errors import LockConflictError, LockError
from repro.locking.deadlock import DeadlockDetector
from repro.locking.lock_table import LockTable, RequestStatus
from repro.locking.modes import MODES_BY_CODE, LockMode, covers
from repro.nf2.surrogate import ResourceInterner


class WorkerError(RuntimeError):
    """A worker process reported an unexpected failure."""


class _WorkerTxn:
    """Worker-side transaction token: identity is the router-given name."""

    __slots__ = ("name", "long")

    def __init__(self, name: str, long: bool = False):
        self.name = name
        self.long = long

    def __repr__(self):
        return "WorkerTxn(%s)" % self.name


# -- the worker process -------------------------------------------------------


def _worker_main(conn, worker_index: int, n_shards: int, n_workers: int,
                 snapshot):
    """Run one worker: owned shard tables behind a sync message loop."""
    tables: Dict[int, LockTable] = {
        shard: LockTable()
        for shard in range(n_shards)
        if shard % n_workers == worker_index
    }
    paths: Dict[int, str] = dict(snapshot)  # the interner snapshot at fork
    txns: Dict[str, _WorkerTxn] = {}
    waiting: Dict[Tuple[str, int], object] = {}

    def txn_of(name: str, long: bool = False) -> _WorkerTxn:
        txn = txns.get(name)
        if txn is None:
            txn = txns[name] = _WorkerTxn(name, long)
        return txn

    def table_of(rid: int) -> LockTable:
        return tables[rid % n_shards]

    def woken_out(woken) -> List[Tuple[str, int, int, int]]:
        out = []
        for request in woken:
            waiting.pop((request.txn.name, request.resource), None)
            held = table_of(request.resource).held_mode(
                request.txn, request.resource
            )
            out.append(
                (
                    request.txn.name,
                    request.resource,
                    request.target_mode.code,
                    held.code if held is not None else -1,
                )
            )
        return out

    def result_out(request) -> Tuple[int, int, int, int, int]:
        rid = request.resource
        held = table_of(rid).held_mode(request.txn, rid)
        if not request.granted:
            waiting[(request.txn.name, rid)] = request
        return (
            rid,
            request.mode.code,
            request.target_mode.code,
            1 if request.granted else 0,
            held.code if held is not None else -1,
        )

    def held_snapshot(txn) -> List[Tuple[int, int]]:
        out = []
        for table in tables.values():
            modes = table._txn_modes.get(txn)
            if modes:
                out.extend((rid, mode.code) for rid, mode in modes.items())
        return out

    def run_steps(txn, steps, long: bool, wait: bool):
        """Mirror of ShardedLockManager.acquire_many over owned tables:
        maximal consecutive same-shard runs, stop on a WAITING tail."""
        out = []
        run: List[Tuple[int, LockMode]] = []
        run_shard = -1
        blocked = False
        for rid, code in steps:
            shard = rid % n_shards
            if shard != run_shard and run:
                granted = tables[run_shard].request_many(
                    txn, run, long=long, wait=wait
                )
                out.extend(granted)
                run = []
                if granted and not granted[-1].granted:
                    blocked = True
                    break
            run_shard = shard
            run.append((rid, MODES_BY_CODE[code]))
        if run and not blocked:
            out.extend(
                tables[run_shard].request_many(txn, run, long=long, wait=wait)
            )
        return out

    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        op = msg[0]
        try:
            if op == "run" or op == "acquire":
                _, name, long, wait, steps = msg
                txn = txn_of(name, long)
                try:
                    requests = run_steps(txn, steps, long, wait)
                except LockConflictError as exc:
                    # wait=False: the prefix granted inside the raising
                    # request_many is lost to the caller (exactly as on
                    # the in-process sharded manager) but *held* in the
                    # table — ship a held-mode snapshot so the router's
                    # mirror stays table-truth for plan pruning.
                    reply = (
                        "conflict",
                        exc.resource,
                        exc.requested.code if exc.requested else -1,
                        held_snapshot(txn),
                    )
                else:
                    reply = ("ok", [result_out(r) for r in requests])
            elif op == "release":
                _, name, rid = msg
                txn = txn_of(name)
                try:
                    woken = table_of(rid).release(txn, rid)
                except LockError as exc:
                    reply = ("exc", "LockError", str(exc))
                else:
                    held = table_of(rid).held_mode(txn, rid)
                    reply = (
                        "ok",
                        held.code if held is not None else -1,
                        woken_out(woken),
                    )
            elif op == "release_run":
                _, name, keep_long, rids = msg
                txn = txn_of(name)
                per_resource = []
                for rid in rids:
                    woken = table_of(rid)._release_resource(
                        txn, rid, keep_long
                    )
                    held = table_of(rid).held_mode(txn, rid)
                    per_resource.append(
                        (
                            rid,
                            held.code if held is not None else -1,
                            woken_out(woken),
                        )
                    )
                reply = ("ok", per_resource)
            elif op == "cleanup":
                _, name = msg
                txn = txns.pop(name, None)
                if txn is not None:
                    for table in tables.values():
                        table._txn_resources.pop(txn, None)
                        table._summary_clear(txn)
                reply = ("ok",)
            elif op == "cancel":
                _, name, rid = msg
                request = waiting.get((name, rid))
                if request is None:
                    reply = ("ok", "missing", -1, [])
                elif request.granted:
                    waiting.pop((name, rid), None)
                    reply = ("ok", "granted", -1, [])
                else:
                    woken = table_of(rid).cancel(request)
                    waiting.pop((name, rid), None)
                    reply = ("ok", "cancelled", -1, woken_out(woken))
            elif op == "edges":
                edges = []
                version = 0
                for shard in sorted(tables):
                    table = tables[shard]
                    version += table.wait_graph_version
                    edges.extend(
                        (waiter.name, holder.name)
                        for waiter, holder in table.waits_for_edges()
                    )
                reply = ("ok", edges, version)
            elif op == "counters":
                counters = {
                    "requests": 0,
                    "immediate_grants": 0,
                    "waits": 0,
                    "conflict_tests": 0,
                    "max_entries": 0,
                    "summary_rebuilds": 0,
                    "lock_count": 0,
                }
                for table in tables.values():
                    counters["requests"] += table.requests
                    counters["immediate_grants"] += table.immediate_grants
                    counters["waits"] += table.waits
                    counters["conflict_tests"] += table.conflict_tests
                    counters["max_entries"] += table.max_entries
                    counters["summary_rebuilds"] += table.summary_rebuilds
                    counters["lock_count"] += table.lock_count()
                reply = ("ok", counters)
            elif op == "reset":
                for table in tables.values():
                    table.requests = 0
                    table.immediate_grants = 0
                    table.waits = 0
                    table.conflict_tests = 0
                    table.max_entries = 0
                    table.summary_rebuilds = 0
                reply = ("ok",)
            elif op == "locked":
                rids: List[int] = []
                for shard in sorted(tables):
                    rids.extend(tables[shard].locked_resources())
                reply = ("ok", rids)
            elif op == "extend":
                _, items = msg
                paths.update(items)  # append-only: rids never remap
                reply = ("ok",)
            elif op == "ping":
                reply = ("ok", worker_index, sorted(tables), len(paths))
            elif op == "stop":
                conn.send(("ok",))
                break
            else:
                reply = ("error", "unknown worker op %r" % (op,))
        except Exception as exc:  # never kill the loop on a handler bug
            reply = ("error", "%s: %s" % (type(exc).__name__, exc))
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    conn.close()


# -- the router-side pool and proxy ------------------------------------------


class WorkerPool:
    """K worker processes, one blocking pipe (plus send lock) each."""

    def __init__(self, n_shards: int, n_workers: int, snapshot=()):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_shards = n_shards
        self.n_workers = n_workers
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        snapshot = list(snapshot)
        self._conns = []
        self._locks = []
        self._procs = []
        for index in range(n_workers):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(child, index, n_shards, n_workers, snapshot),
                name="repro-lock-worker-%d" % index,
                daemon=True,
            )
            proc.start()
            child.close()
            self._conns.append(parent)
            self._locks.append(threading.Lock())
            self._procs.append(proc)
        self.snapshot_len = len(snapshot)

    def worker_of(self, shard: int) -> int:
        return shard % self.n_workers

    def call(self, worker: int, msg: tuple) -> tuple:
        with self._locks[worker]:
            conn = self._conns[worker]
            conn.send(msg)
            reply = conn.recv()
        if reply[0] == "error":
            raise WorkerError(reply[1])
        return reply

    def stop(self):
        for worker, proc in enumerate(self._procs):
            try:
                self.call(worker, ("stop",))
            except (WorkerError, BrokenPipeError, EOFError, OSError):
                pass
            self._conns[worker].close()
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=2.0)


class ProxyLockRequest:
    """Router-side stand-in for a worker's :class:`LockRequest`."""

    __slots__ = (
        "txn",
        "resource",
        "mode",
        "target_mode",
        "status",
        "long",
        "is_conversion",
        "enqueued_at",
    )

    def __init__(self, txn, resource, mode, target_mode, long, granted):
        self.txn = txn
        self.resource = resource
        self.mode = mode
        self.target_mode = target_mode
        self.status = (
            RequestStatus.GRANTED if granted else RequestStatus.WAITING
        )
        self.long = long
        self.is_conversion = False
        self.enqueued_at = None

    @property
    def granted(self) -> bool:
        return self.status == RequestStatus.GRANTED

    def __repr__(self):
        return "ProxyLockRequest(txn=%r, resource=%r, mode=%s, status=%s)" % (
            self.txn,
            self.resource,
            self.target_mode,
            self.status,
        )


class _ProxyTable:
    """``manager.table`` facade over the worker fleet.

    Held-mode questions (``holds_at_least`` — the plan filter and the
    trace replay prune on it) come from the router's mirror, which is
    table-truth: every grant crosses the pipe in some RPC reply.  The
    waits-for union graph is fetched live from the workers' serialized
    edge dumps; transaction names map back to router transactions.
    """

    def __init__(self, proxy: "WorkerProxyManager"):
        self._proxy = proxy
        self.fault_injector = None  # workers run without lock-point faults

    def holds_at_least(self, txn, resource, mode: LockMode) -> bool:
        held = self._proxy._held.get(txn, {}).get(resource)
        return held is not None and covers(held, mode)

    def held_mode(self, txn, resource) -> Optional[LockMode]:
        return self._proxy._held.get(txn, {}).get(resource)

    def resources_of(self, txn):
        return set(self._proxy._held.get(txn, ()))

    def locked_resources(self) -> List[object]:
        proxy = self._proxy
        out: List[object] = []
        for worker in range(proxy.pool.n_workers):
            (rids,) = proxy.pool.call(worker, ("locked",))[1:]
            out.extend(proxy.router.resource_of(rid) for rid in rids)
        return out

    def lock_count(self) -> int:
        return sum(
            counters["lock_count"] for counters in self._proxy._counters()
        )

    def waiting_requests(self) -> List[ProxyLockRequest]:
        return [
            request
            for request in self._proxy._waiting.values()
            if request.status == RequestStatus.WAITING
        ]

    def waiting_requests_of(self, txn) -> List[ProxyLockRequest]:
        name = getattr(txn, "name", txn)
        return [
            request
            for (owner, _), request in self._proxy._waiting.items()
            if owner == name and request.status == RequestStatus.WAITING
        ]

    @property
    def wait_graph_version(self) -> int:
        return self._proxy._edge_dump()[1]

    def waits_for_edges(self) -> List[Tuple[object, object]]:
        proxy = self._proxy
        edges = []
        for waiter_name, holder_name in proxy._edge_dump()[0]:
            waiter = proxy._txns_by_name.get(waiter_name)
            holder = proxy._txns_by_name.get(holder_name)
            if waiter is not None and holder is not None:
                edges.append((waiter, holder))
        return edges


class WorkerProxyManager:
    """The ``LockManager`` surface, served by worker processes.

    Drop-in for :class:`~repro.service.sharded.ShardedLockManager` from
    the :class:`~repro.service.server.LockServer`'s point of view — but
    every method is *blocking* (pipe round-trips), so the server invokes
    it through ``run_in_executor``.  A single re-entrant mutex serializes
    router-side bookkeeping (the held-mode mirror, the grant-order index,
    the waiting registry); per-worker pipe locks serialize the transport.
    """

    def __init__(self, pool: WorkerPool, router: Optional[ResourceInterner] = None,
                 age_of=None):
        self.pool = pool
        self.router = router if router is not None else ResourceInterner()
        self.n_shards = pool.n_shards
        self.n_workers = pool.n_workers
        self.use_dense_path = False
        self.table = _ProxyTable(self)
        self.detector = DeadlockDetector(self.table, age_of=age_of)
        self.on_wake = None
        self._mutex = threading.RLock()
        #: txn -> {resource: LockMode}: mirror of worker-side held modes
        self._held: Dict[object, Dict[object, LockMode]] = {}
        #: txn -> {resource: None}: global first-grant order (EOT walk)
        self._txn_order: Dict[object, Dict[object, None]] = {}
        #: (txn name, resource) -> parked ProxyLockRequest
        self._waiting: Dict[Tuple[str, object], ProxyLockRequest] = {}
        self._txns_by_name: Dict[str, object] = {}
        #: per-worker count of interner entries already shipped
        self._shipped = [pool.snapshot_len] * pool.n_workers

    # -- routing and interner shipping ---------------------------------------

    def shard_of(self, resource) -> int:
        return self.router.intern(resource) % self.n_shards

    def _worker_of_rid(self, rid: int) -> int:
        return (rid % self.n_shards) % self.n_workers

    def _ship(self, worker: int):
        """Extend the worker's interner snapshot append-only."""
        have = self._shipped[worker]
        total = len(self.router)
        if have >= total:
            return
        items = [
            (
                rid,
                "/".join(str(p) for p in self.router.resource_of(rid)),
            )
            for rid in range(have, total)
        ]
        self.pool.call(worker, ("extend", items))
        self._shipped[worker] = total

    def _call(self, worker: int, msg: tuple) -> tuple:
        self._ship(worker)
        return self.pool.call(worker, msg)

    def set_age_of(self, age_of) -> "WorkerProxyManager":
        self.detector.set_age_of(age_of)
        return self

    # -- bookkeeping mirrors (same rules as ShardedLockManager) ---------------

    def _note_granted(self, txn, resource, held_mode: LockMode):
        self._held.setdefault(txn, {})[resource] = held_mode
        self._txn_order.setdefault(txn, {})[resource] = None

    def _note_released(self, txn, resource):
        held = self._held.get(txn)
        if held is not None:
            held.pop(resource, None)
            if not held:
                del self._held[txn]
        order = self._txn_order.get(txn)
        if order is not None:
            order.pop(resource, None)
            if not order:
                del self._txn_order[txn]

    def _register(self, txn):
        self._txns_by_name[txn.name] = txn

    def _adopt_results(self, txn, results, long: bool) -> List[ProxyLockRequest]:
        out = []
        for rid, mode_code, target_code, granted, held_code in results:
            resource = self.router.resource_of(rid)
            request = ProxyLockRequest(
                txn,
                resource,
                MODES_BY_CODE[mode_code],
                MODES_BY_CODE[target_code],
                long,
                bool(granted),
            )
            if granted:
                self._note_granted(txn, resource, MODES_BY_CODE[held_code])
            else:
                self._waiting[(txn.name, resource)] = request
            out.append(request)
        return out

    def _adopt_woken(self, items) -> List[ProxyLockRequest]:
        """Turn a reply's wake list into granted proxy requests (no
        ``on_wake`` here — callers fire it once per manager operation)."""
        out = []
        for name, rid, target_code, held_code in items:
            resource = self.router.resource_of(rid)
            txn = self._txns_by_name.get(name)
            request = self._waiting.pop((name, resource), None)
            if request is None:  # pragma: no cover - wake without a park
                request = ProxyLockRequest(
                    txn, resource, MODES_BY_CODE[target_code],
                    MODES_BY_CODE[target_code], False, True,
                )
            request.status = RequestStatus.GRANTED
            request.target_mode = MODES_BY_CODE[target_code]
            if txn is not None:
                self._note_granted(txn, resource, MODES_BY_CODE[held_code])
            out.append(request)
        return out

    def _fire_wake(self, woken: List[ProxyLockRequest]):
        if woken and self.on_wake is not None:
            self.on_wake(woken)

    def _raise_conflict(self, txn, reply, requested: Optional[LockMode]):
        _, rid, requested_code, snapshot = reply
        # true up the mirror: the conflicting call's granted prefix is
        # held in the table even though no result row reported it
        for held_rid, held_code in snapshot:
            resource = self.router.resource_of(held_rid)
            self._held.setdefault(txn, {})[resource] = MODES_BY_CODE[held_code]
        resource = self.router.resource_of(rid) if rid is not None else None
        mode = (
            MODES_BY_CODE[requested_code]
            if requested_code >= 0
            else requested
        )
        raise LockConflictError(
            "lock %s on %r denied for %r" % (mode, resource, txn),
            resource=resource,
            requested=mode,
        )

    # -- the LockManager surface ----------------------------------------------

    def acquire(self, txn, resource, mode: LockMode, long: bool = False,
                wait: bool = True) -> ProxyLockRequest:
        with self._mutex:
            self._register(txn)
            rid = self.router.intern(resource)
            worker = self._worker_of_rid(rid)
            reply = self._call(
                worker, ("acquire", txn.name, long, wait, [(rid, mode.code)])
            )
            if reply[0] == "conflict":
                self._raise_conflict(txn, reply, mode)
            results = self._adopt_results(txn, reply[1], long)
            if not results:
                # covered by an already-held mode: synthesize the granted
                # request the in-process manager's caller would never see
                # either — acquire() on a covered resource still submits
                # (no pruning on the single-step path), so this only
                # happens for a re-request, which the table grants
                raise WorkerError(
                    "worker pruned a single acquire of %r" % (resource,)
                )
            return results[0]

    def acquire_many(self, txn, steps, long: bool = False,
                     wait: bool = True) -> List[ProxyLockRequest]:
        with self._mutex:
            self._register(txn)
            out: List[ProxyLockRequest] = []
            run: List[Tuple[int, int]] = []
            run_worker = -1
            blocked = False
            for resource, mode in steps:
                rid = self.router.intern(resource)
                worker = self._worker_of_rid(rid)
                if worker != run_worker and run:
                    reply = self._call(
                        run_worker, ("run", txn.name, long, wait, run)
                    )
                    if reply[0] == "conflict":
                        self._raise_conflict(txn, reply, None)
                    granted = self._adopt_results(txn, reply[1], long)
                    out.extend(granted)
                    run = []
                    if granted and not granted[-1].granted:
                        blocked = True
                        break
                run_worker = worker
                run.append((rid, mode.code))
            if run and not blocked:
                reply = self._call(
                    run_worker, ("run", txn.name, long, wait, run)
                )
                if reply[0] == "conflict":
                    self._raise_conflict(txn, reply, None)
                out.extend(self._adopt_results(txn, reply[1], long))
            return out

    def release(self, txn, resource) -> List[ProxyLockRequest]:
        with self._mutex:
            self._register(txn)
            rid = self.router.intern(resource)
            reply = self._call(
                self._worker_of_rid(rid), ("release", txn.name, rid)
            )
            if reply[0] == "exc":
                raise LockError(reply[2])
            held_code, woken_items = reply[1], reply[2]
            if held_code < 0:
                self._note_released(txn, resource)
            else:
                self._held.setdefault(txn, {})[resource] = MODES_BY_CODE[
                    held_code
                ]
            woken = self._adopt_woken(woken_items)
            self._fire_wake(woken)
            return woken

    def release_all(self, txn, keep_long: bool = False) -> List[ProxyLockRequest]:
        with self._mutex:
            self._register(txn)
            resources = list(self._txn_order.get(txn, ()))
            touched = set(resources)
            for (name, resource), request in list(self._waiting.items()):
                if name == txn.name and resource not in touched:
                    touched.add(resource)
                    resources.append(resource)
            woken: List[ProxyLockRequest] = []
            held_after: Dict[object, int] = {}
            index = 0
            # maximal consecutive same-worker runs of the global
            # first-grant order: wake order inside a run is the worker's
            # sequential release order, runs are dispatched in order, so
            # the global wake order matches the single table's
            while index < len(resources):
                rid = self.router.intern(resources[index])
                worker = self._worker_of_rid(rid)
                run_rids = [rid]
                stop = index + 1
                while stop < len(resources):
                    next_rid = self.router.intern(resources[stop])
                    if self._worker_of_rid(next_rid) != worker:
                        break
                    run_rids.append(next_rid)
                    stop += 1
                reply = self._call(
                    worker, ("release_run", txn.name, keep_long, run_rids)
                )
                for rid, held_code, woken_items in reply[1]:
                    held_after[self.router.resource_of(rid)] = held_code
                    woken.extend(self._adopt_woken(woken_items))
                index = stop
            # the victim's own parked requests were cancelled inside
            # _release_resource on the worker; retire them here too
            for key in [
                key for key in self._waiting if key[0] == txn.name
            ]:
                request = self._waiting.pop(key)
                if not request.granted:
                    request.status = RequestStatus.CANCELLED
            if not keep_long:
                for worker in range(self.n_workers):
                    self._call(worker, ("cleanup", txn.name))
                self._txn_order.pop(txn, None)
                self._held.pop(txn, None)
            else:
                held = self._held.get(txn, {})
                order = self._txn_order.get(txn)
                for resource in resources:
                    code = held_after.get(resource, -1)
                    if code < 0:
                        held.pop(resource, None)
                        if order is not None:
                            order.pop(resource, None)
                    else:
                        held[resource] = MODES_BY_CODE[code]
                if order is not None and not order:
                    del self._txn_order[txn]
                if not held:
                    self._held.pop(txn, None)
            self._fire_wake(woken)
            return woken

    def cancel(self, request: ProxyLockRequest) -> List[ProxyLockRequest]:
        with self._mutex:
            txn = request.txn
            rid = self.router.intern(request.resource)
            reply = self._call(
                self._worker_of_rid(rid), ("cancel", txn.name, rid)
            )
            state, woken_items = reply[1], reply[3]
            if state == "cancelled":
                request.status = RequestStatus.CANCELLED
                self._waiting.pop((txn.name, request.resource), None)
            woken = self._adopt_woken(woken_items)
            self._fire_wake(woken)
            return woken

    # -- inspection ----------------------------------------------------------

    def holders(self, resource) -> Dict[object, LockMode]:
        out: Dict[object, LockMode] = {}
        for txn, held in self._held.items():
            mode = held.get(resource)
            if mode is not None:
                out[txn] = mode
        return out

    def held_mode(self, txn, resource) -> Optional[LockMode]:
        return self.table.held_mode(txn, resource)

    def holds_at_least(self, txn, resource, mode: LockMode) -> bool:
        return self.table.holds_at_least(txn, resource, mode)

    def locks_of(self, txn) -> Dict[object, LockMode]:
        return dict(self._held.get(txn, {}))

    def lock_count(self) -> int:
        with self._mutex:
            return self.table.lock_count()

    # -- deadlock handling ----------------------------------------------------

    def _edge_dump(self) -> Tuple[List[Tuple[str, str]], int]:
        edges: List[Tuple[str, str]] = []
        version = 0
        for worker in range(self.n_workers):
            reply = self._call(worker, ("edges",))
            edges.extend(reply[1])
            version += reply[2]
        return edges, version

    def detect_deadlock(self):
        with self._mutex:
            return self.detector.check()

    def resolve_deadlocks(self, abort_callback):
        victims = []
        while True:
            cycle = self.detect_deadlock()
            if cycle is None:
                return victims
            victim = self.detector.pick_victim(cycle)
            victims.append(victim)
            abort_callback(victim)

    # -- metrics --------------------------------------------------------------

    def _counters(self) -> List[Dict[str, int]]:
        return [
            self._call(worker, ("counters",))[1]
            for worker in range(self.n_workers)
        ]

    def metrics(self) -> Dict[str, int]:
        with self._mutex:
            totals = {
                "requests": 0,
                "immediate_grants": 0,
                "waits": 0,
                "conflict_tests": 0,
                "max_entries": 0,
                "summary_rebuilds": 0,
            }
            for counters in self._counters():
                for key in totals:
                    totals[key] += counters[key]
            totals["deadlocks"] = self.detector.deadlocks_found
            totals["shards"] = self.n_shards
            totals["workers"] = self.n_workers
            return totals

    def reset_metrics(self):
        with self._mutex:
            for worker in range(self.n_workers):
                self._call(worker, ("reset",))
            self.detector.deadlocks_found = 0

    def stop(self):
        self.pool.stop()
