"""Async client and load generator for the served lock system.

:class:`ServiceClient` is a minimal line-protocol client (one in-flight
request per connection, matching the server's request/response framing).
:func:`run_load` drives many concurrent clients over short transactions
against a running server and reports achieved requests/second — the
workhorse behind ``repro-load`` and the shard-scaling benchmark.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from typing import Dict, List, Optional, Sequence, Tuple


class ServiceClient:
    """One connection speaking the line protocol."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> "ServiceClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        return self

    async def close(self):
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._writer = None
            self._reader = None

    async def request(self, frame: str) -> str:
        """Send one frame, await its response line."""
        assert self._writer is not None and self._reader is not None
        self._writer.write((frame + "\n").encode("utf-8"))
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionResetError("server closed the connection")
        return line.decode("utf-8").strip()

    # -- convenience verbs (each returns the raw response frame) --------------

    async def start(self, txn: str) -> str:
        return await self.request("START %s" % txn)

    async def slock(self, txn: str, path: str, nowait: bool = False) -> str:
        return await self.request(
            "SLOCK %s %s%s" % (txn, path, " NOWAIT" if nowait else "")
        )

    async def xlock(self, txn: str, path: str, nowait: bool = False) -> str:
        return await self.request(
            "XLOCK %s %s%s" % (txn, path, " NOWAIT" if nowait else "")
        )

    async def lock(self, verb: str, txn: str, path: str, nowait: bool = False) -> str:
        return await self.request(
            "%s %s %s%s" % (verb, txn, path, " NOWAIT" if nowait else "")
        )

    async def acquire_many(
        self, txn: str, steps: Sequence[Tuple[str, str]], nowait: bool = False
    ) -> str:
        spec = ",".join("%s:%s" % (path, mode) for path, mode in steps)
        return await self.request(
            "ACQUIRE_MANY %s %s%s" % (txn, spec, " NOWAIT" if nowait else "")
        )

    async def unlock(self, txn: str, path: str) -> str:
        return await self.request("UNLOCK %s %s" % (txn, path))

    async def end(self, txn: str) -> str:
        return await self.request("END %s" % txn)

    async def stats(self) -> Dict[str, object]:
        frame = await self.request("STATS")
        if not frame.startswith("OK STATS "):
            raise ValueError("unexpected STATS response: %r" % frame)
        return json.loads(frame[len("OK STATS "):])


def workload_paths(workload: str) -> List[str]:
    """Object-level wire paths of a standard workload database.

    Built from the same deterministic builders the server uses, so the
    load generator needs no schema round-trip to produce valid paths.
    """
    from repro.graphs.units import object_resource
    from repro.service.server import make_service_stack

    stack = make_service_stack(workload, shards=1)
    paths = []
    for relation in stack.database.relations():
        for obj in relation:
            resource = object_resource(stack.catalog, relation.name, obj.key)
            paths.append("/".join(str(part) for part in resource))
    return paths


async def _client_loop(
    host: str,
    port: int,
    name: str,
    paths: Sequence[str],
    deadline: float,
    seed: int,
    counts: Dict[str, int],
    txn_locks: int = 3,
    write_ratio: float = 0.2,
):
    """One load client: short transactions until the deadline.

    Each transaction is START, ``txn_locks`` lock demands on distinct
    objects (mostly SLOCK, a ``write_ratio`` fraction XLOCK), END.
    Distinct objects per transaction keep re-demand pruning honest — a
    transaction never re-locks a node it already covered, so every
    demand does real shard work.
    """
    rng = random.Random(seed)
    client = await ServiceClient(host, port).connect()
    serial = 0
    try:
        while time.monotonic() < deadline:
            serial += 1
            txn = "%s-%d" % (name, serial)
            response = await client.start(txn)
            counts["ok" if response.startswith("OK") else "err"] += 1
            chosen = rng.sample(paths, min(txn_locks, len(paths)))
            aborted = False
            for path in chosen:
                verb = "XLOCK" if rng.random() < write_ratio else "SLOCK"
                response = await client.lock(verb, txn, path)
                if response.startswith("OK"):
                    counts["ok"] += 1
                else:
                    counts["err"] += 1
                    if "DEADLOCK" in response or "NOTXN" in response:
                        aborted = True
                        break
            if not aborted:
                response = await client.end(txn)
                counts["ok" if response.startswith("OK") else "err"] += 1
    except (ConnectionResetError, BrokenPipeError):
        counts["disconnects"] += 1
    finally:
        await client.close()


async def run_load(
    host: str,
    port: int,
    clients: int = 8,
    duration: float = 5.0,
    seed: int = 0,
    workload: str = "cells",
    txn_locks: int = 3,
    write_ratio: float = 0.2,
    paths: Optional[Sequence[str]] = None,
) -> Dict[str, object]:
    """Drive ``clients`` concurrent load clients for ``duration`` seconds.

    Returns a report dict: ``ok`` / ``err`` response counts, elapsed
    wall-clock and the achieved ``req_per_sec`` (OK responses only), plus
    the server's final STATS payload.
    """
    if paths is None:
        paths = workload_paths(workload)
    counts: Dict[str, int] = {"ok": 0, "err": 0, "disconnects": 0}
    started = time.monotonic()
    deadline = started + duration
    await asyncio.gather(
        *(
            _client_loop(
                host,
                port,
                "c%d" % index,
                paths,
                deadline,
                seed * 1000 + index,
                counts,
                txn_locks=txn_locks,
                write_ratio=write_ratio,
            )
            for index in range(clients)
        )
    )
    elapsed = time.monotonic() - started
    stats_client = await ServiceClient(host, port).connect()
    try:
        server_stats = await stats_client.stats()
    finally:
        await stats_client.close()
    return {
        "clients": clients,
        "duration": duration,
        "elapsed": elapsed,
        "ok": counts["ok"],
        "err": counts["err"],
        "disconnects": counts["disconnects"],
        "req_per_sec": counts["ok"] / elapsed if elapsed > 0 else 0.0,
        "server": server_stats,
    }
