"""Async client and load generator for the served lock system.

:class:`ServiceClient` speaks both wire protocols.  In text mode it is
the minimal line-protocol client of PR 7 (one in-flight request per
connection).  With ``binary=True`` it performs the ``HELLO BINARY``
upgrade, learns the server's dense resource-id table over
``OP_RESOURCES`` (extending it on demand with ``OP_INTERN``) and runs a
correlation-id dispatch table that allows up to ``pipeline_depth``
requests in flight: ``submit_*`` queue frames into an auto-batch,
``flush`` sends the batch in one write, and a background reader task
resolves each response future as frames arrive.  Every verb returns the
*text-equivalent* response string regardless of wire mode — the property
the wire differential harness pins.

:func:`run_load` drives many concurrent clients over short transactions
against a running server and reports achieved requests/second plus
p50/p95/p99 request latency — the workhorse behind ``repro-load`` and
the wire-protocol benchmark ladder.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from repro.locking.modes import (
    AP,
    IAP,
    IINC,
    INC,
    IS,
    ISI,
    IX,
    S,
    SI,
    X,
    LockMode,
)
from repro.service import wire

#: Lock verbs -> the mode they demand (client-side mirror of the
#: server's _PLAN_VERBS, used to pick the binary mode code).
_VERB_MODES = {
    "SLOCK": S,
    "XLOCK": X,
    "ISLOCK": IS,
    "IXLOCK": IX,
    "SILOCK": SI,
    "APLOCK": AP,
    "INCLOCK": INC,
    "ISILOCK": ISI,
    "IAPLOCK": IAP,
    "IINCLOCK": IINC,
}


class ServiceClient:
    """One connection speaking the line or binary protocol."""

    def __init__(
        self,
        host: str,
        port: int,
        binary: bool = False,
        pipeline_depth: int = 1,
        latencies: Optional[List[float]] = None,
    ):
        self.host = host
        self.port = port
        self.binary = binary
        self.pipeline_depth = max(1, pipeline_depth)
        #: optional sink for per-request latency samples (seconds)
        self.latencies = latencies
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        # binary-mode state: correlation dispatch + batching
        self._corr = 0
        self._pending: Dict[int, Tuple[asyncio.Future, float]] = {}
        self._decoder = wire.FrameDecoder(max_frame=1 << 30)
        self._reader_task: Optional[asyncio.Task] = None
        self._sem: Optional[asyncio.Semaphore] = None
        self._out = bytearray()
        self._path_rids: Dict[str, int] = {}
        self._rid_paths: Dict[int, str] = {}

    async def connect(self) -> "ServiceClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        if self.binary:
            # the upgrade itself happens in the text protocol
            self._writer.write(b"HELLO BINARY\n")
            await self._writer.drain()
            line = await self._reader.readline()
            if line.strip() != b"OK HELLO BINARY":
                raise ConnectionResetError(
                    "HELLO BINARY upgrade refused: %r" % line
                )
            self._sem = asyncio.Semaphore(self.pipeline_depth)
            self._reader_task = asyncio.get_running_loop().create_task(
                self._read_loop()
            )
            await self._fetch_resources()
        return self

    async def close(self):
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, ConnectionResetError):
                pass
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._writer = None
            self._reader = None

    # -- text transport -------------------------------------------------------

    async def request(self, frame: str) -> str:
        """Send one text frame, await its response line (text mode only)."""
        assert self._writer is not None and self._reader is not None
        sent_at = time.monotonic()
        self._writer.write((frame + "\n").encode("utf-8"))
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionResetError("server closed the connection")
        if self.latencies is not None:
            self.latencies.append(time.monotonic() - sent_at)
        return line.decode("utf-8").strip()

    # -- binary transport -----------------------------------------------------

    async def _read_loop(self):
        """Resolve response futures by correlation id as frames arrive."""
        assert self._reader is not None
        try:
            while True:
                chunk = await self._reader.read(64 * 1024)
                if not chunk:
                    raise ConnectionResetError("server closed the connection")
                self._decoder.feed(chunk)
                for opcode, corr, body in self._decoder.frames():
                    entry = self._pending.pop(corr, None)
                    if entry is None:
                        continue
                    future, sent_at = entry
                    if self.latencies is not None:
                        self.latencies.append(time.monotonic() - sent_at)
                    if self._sem is not None:
                        self._sem.release()
                    if not future.done():
                        future.set_result(
                            (
                                opcode,
                                wire.decode_response_fields(
                                    opcode, body, 0, len(body)
                                ),
                            )
                        )
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            failure = (
                exc
                if isinstance(exc, ConnectionResetError)
                else ConnectionResetError(str(exc))
            )
            for future, _ in self._pending.values():
                if not future.done():
                    future.set_exception(failure)
            self._pending.clear()

    async def _submit(self, opcode: int, fields: tuple) -> asyncio.Future:
        """Queue one binary request; the future resolves to
        ``(opcode, fields)`` of its response."""
        assert self.binary and self._sem is not None
        if self._sem.locked():
            # the pipeline is full: anything still batched must go out
            # before we park, or nothing would ever free a slot
            await self.flush()
        await self._sem.acquire()
        self._corr = (self._corr + 1) & 0xFFFFFFFF
        corr = self._corr
        future = asyncio.get_running_loop().create_future()
        self._pending[corr] = (future, time.monotonic())
        self._out += wire.encode_request(opcode, corr, fields)
        return future

    async def flush(self):
        """Send every batched frame in one write."""
        if self._out:
            assert self._writer is not None
            data = bytes(self._out)
            del self._out[:]
            self._writer.write(data)
            await self._writer.drain()

    def _text_future(self, future: asyncio.Future) -> "asyncio.Task[str]":
        """A task resolving to the text-equivalent response string."""

        async def convert() -> str:
            opcode, fields = await future
            return wire.response_to_text(opcode, fields)

        return asyncio.get_running_loop().create_task(convert())

    async def _roundtrip(self, opcode: int, fields: tuple) -> str:
        future = await self._submit(opcode, fields)
        await self.flush()
        resp_opcode, resp_fields = await future
        return wire.response_to_text(resp_opcode, resp_fields)

    async def _fetch_resources(self):
        """Learn the server's rid table (OP_RESOURCES)."""
        future = await self._submit(wire.OP_RESOURCES, ())
        await self.flush()
        opcode, fields = await future
        if opcode != wire.RESP_RESOURCES:
            raise ConnectionResetError(
                "unexpected OP_RESOURCES reply opcode 0x%02x" % opcode
            )
        for rid, path in fields[0]:
            self._path_rids[path] = rid
            self._rid_paths[rid] = path

    async def _rid_of(self, path: str):
        """``(rid, None)`` for a known path, interning on demand;
        ``(None, errtext)`` when the server rejects the path."""
        rid = self._path_rids.get(path)
        if rid is not None:
            return rid, None
        future = await self._submit(wire.OP_INTERN, (path,))
        await self.flush()
        opcode, fields = await future
        if opcode != wire.RESP_INTERNED:
            return None, wire.response_to_text(opcode, fields)
        rid = fields[0]
        self._path_rids[path] = rid
        self._rid_paths[rid] = path
        return rid, None

    # -- pipelined submit verbs (binary mode) ---------------------------------

    async def submit_start(self, txn: str) -> "asyncio.Future":
        return self._text_future(await self._submit(wire.OP_START, (txn,)))

    async def submit_end(self, txn: str) -> "asyncio.Future":
        return self._text_future(await self._submit(wire.OP_END, (txn,)))

    async def submit_lock(
        self, verb: str, txn: str, path: str, nowait: bool = False
    ) -> "asyncio.Future":
        rid, err = await self._rid_of(path)
        if err is not None:
            future = asyncio.get_running_loop().create_future()
            future.set_result(err)
            return future
        mode = _VERB_MODES[verb.upper()]
        return self._text_future(
            await self._submit(
                wire.OP_LOCK,
                (mode.code, wire.FLAG_NOWAIT if nowait else 0, rid, txn),
            )
        )

    async def submit_unlock(self, txn: str, path: str) -> "asyncio.Future":
        rid, err = await self._rid_of(path)
        if err is not None:
            future = asyncio.get_running_loop().create_future()
            future.set_result(err)
            return future
        return self._text_future(
            await self._submit(wire.OP_UNLOCK, (rid, txn))
        )

    # -- convenience verbs (each returns the text response frame) -------------

    async def start(self, txn: str) -> str:
        if self.binary:
            return await self._roundtrip(wire.OP_START, (txn,))
        return await self.request("START %s" % txn)

    async def slock(self, txn: str, path: str, nowait: bool = False) -> str:
        return await self.lock("SLOCK", txn, path, nowait=nowait)

    async def xlock(self, txn: str, path: str, nowait: bool = False) -> str:
        return await self.lock("XLOCK", txn, path, nowait=nowait)

    async def silock(self, txn: str, path: str, nowait: bool = False) -> str:
        return await self.lock("SILOCK", txn, path, nowait=nowait)

    async def modes(self) -> List[str]:
        """The mode vocabulary the server accepts (OP_MODES / MODES)."""
        if self.binary:
            frame = await self._roundtrip(wire.OP_MODES, ())
        else:
            frame = await self.request("MODES")
        if not frame.startswith("OK MODES "):
            raise ValueError("unexpected MODES response: %r" % frame)
        return frame[len("OK MODES "):].split(",")

    async def lock(
        self, verb: str, txn: str, path: str, nowait: bool = False
    ) -> str:
        if self.binary:
            task = await self.submit_lock(verb, txn, path, nowait=nowait)
            await self.flush()
            return await task
        return await self.request(
            "%s %s %s%s" % (verb, txn, path, " NOWAIT" if nowait else "")
        )

    async def acquire_many(
        self, txn: str, steps: Sequence[Tuple[str, str]], nowait: bool = False
    ) -> str:
        if self.binary:
            wire_steps = []
            for path, mode_name in steps:
                try:
                    mode = LockMode(mode_name.upper())
                except ValueError:
                    return "ERR BAD-MODE %s" % mode_name
                rid, err = await self._rid_of(path)
                if err is not None:
                    return err
                wire_steps.append((rid, mode.code))
            return await self._roundtrip(
                wire.OP_ACQUIRE_MANY,
                (wire.FLAG_NOWAIT if nowait else 0, tuple(wire_steps), txn),
            )
        spec = ",".join("%s:%s" % (path, mode) for path, mode in steps)
        return await self.request(
            "ACQUIRE_MANY %s %s%s" % (txn, spec, " NOWAIT" if nowait else "")
        )

    async def unlock(self, txn: str, path: str) -> str:
        if self.binary:
            task = await self.submit_unlock(txn, path)
            await self.flush()
            return await task
        return await self.request("UNLOCK %s %s" % (txn, path))

    async def end(self, txn: str) -> str:
        if self.binary:
            return await self._roundtrip(wire.OP_END, (txn,))
        return await self.request("END %s" % txn)

    async def stats(self) -> Dict[str, object]:
        if self.binary:
            frame = await self._roundtrip(wire.OP_STATS, ())
        else:
            frame = await self.request("STATS")
        if not frame.startswith("OK STATS "):
            raise ValueError("unexpected STATS response: %r" % frame)
        return json.loads(frame[len("OK STATS "):])


def workload_paths(workload: str) -> List[str]:
    """Object-level wire paths of a standard workload database.

    Built from the same deterministic builders the server uses, so the
    load generator needs no schema round-trip to produce valid paths.
    """
    from repro.graphs.units import object_resource
    from repro.service.server import make_service_stack

    stack = make_service_stack(workload, shards=1)
    paths = []
    for relation in stack.database.relations():
        for obj in relation:
            resource = object_resource(stack.catalog, relation.name, obj.key)
            paths.append("/".join(str(part) for part in resource))
    return paths


async def _client_loop(
    host: str,
    port: int,
    name: str,
    paths: Sequence[str],
    deadline: float,
    seed: int,
    counts: Dict[str, int],
    txn_locks: int = 3,
    write_ratio: float = 0.2,
    binary: bool = False,
    latencies: Optional[List[float]] = None,
):
    """One load client: short transactions until the deadline.

    Each transaction is START, ``txn_locks`` lock demands on distinct
    objects (mostly SLOCK, a ``write_ratio`` fraction XLOCK), END.
    Distinct objects per transaction keep re-demand pruning honest — a
    transaction never re-locks a node it already covered, so every
    demand does real shard work.
    """
    rng = random.Random(seed)
    client = await ServiceClient(
        host, port, binary=binary, latencies=latencies
    ).connect()
    serial = 0
    try:
        while time.monotonic() < deadline:
            serial += 1
            txn = "%s-%d" % (name, serial)
            response = await client.start(txn)
            counts["ok" if response.startswith("OK") else "err"] += 1
            chosen = rng.sample(paths, min(txn_locks, len(paths)))
            aborted = False
            for path in chosen:
                verb = "XLOCK" if rng.random() < write_ratio else "SLOCK"
                response = await client.lock(verb, txn, path)
                if response.startswith("OK"):
                    counts["ok"] += 1
                else:
                    counts["err"] += 1
                    if "DEADLOCK" in response or "NOTXN" in response:
                        aborted = True
                        break
            if not aborted:
                response = await client.end(txn)
                counts["ok" if response.startswith("OK") else "err"] += 1
    except (ConnectionResetError, BrokenPipeError):
        counts["disconnects"] += 1
    finally:
        await client.close()


async def _pipelined_client_loop(
    host: str,
    port: int,
    name: str,
    paths: Sequence[str],
    deadline: float,
    seed: int,
    counts: Dict[str, int],
    txn_locks: int = 3,
    write_ratio: float = 0.2,
    pipeline_depth: int = 32,
    latencies: Optional[List[float]] = None,
):
    """One pipelined load client (binary wire, N requests in flight).

    Whole transactions are batched — START, the lock demands and END go
    out in a single write — and responses are reaped from a sliding
    window of outstanding futures, so the connection never waits a full
    round-trip per frame.  The random demand sequence is identical to
    :func:`_client_loop`'s for the same seed.
    """
    rng = random.Random(seed)
    client = await ServiceClient(
        host,
        port,
        binary=True,
        pipeline_depth=pipeline_depth,
        latencies=latencies,
    ).connect()
    outstanding: "deque[asyncio.Future]" = deque()

    async def reap(limit: int):
        while len(outstanding) > limit:
            response = await outstanding.popleft()
            counts["ok" if response.startswith("OK") else "err"] += 1

    serial = 0
    try:
        while time.monotonic() < deadline:
            serial += 1
            txn = "%s-%d" % (name, serial)
            outstanding.append(await client.submit_start(txn))
            for path in rng.sample(paths, min(txn_locks, len(paths))):
                verb = "XLOCK" if rng.random() < write_ratio else "SLOCK"
                outstanding.append(await client.submit_lock(verb, txn, path))
            outstanding.append(await client.submit_end(txn))
            await client.flush()
            await reap(pipeline_depth)
        await reap(0)
    except (ConnectionResetError, BrokenPipeError):
        counts["disconnects"] += 1
        for future in outstanding:
            future.cancel()
    finally:
        await client.close()


def _percentile(sorted_samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending sample list (0 if empty)."""
    if not sorted_samples:
        return 0.0
    index = min(
        len(sorted_samples) - 1, int(round(q * (len(sorted_samples) - 1)))
    )
    return sorted_samples[index]


async def run_load(
    host: str,
    port: int,
    clients: int = 8,
    duration: float = 5.0,
    seed: int = 0,
    workload: str = "cells",
    txn_locks: int = 3,
    write_ratio: float = 0.2,
    paths: Optional[Sequence[str]] = None,
    binary: bool = False,
    pipeline_depth: int = 1,
) -> Dict[str, object]:
    """Drive ``clients`` concurrent load clients for ``duration`` seconds.

    Returns a report dict: ``ok`` / ``err`` response counts, elapsed
    wall-clock, the achieved ``req_per_sec`` (OK responses only),
    p50/p95/p99 request latency in milliseconds, the wire mode and
    pipeline depth, plus the server's final STATS payload.
    ``pipeline_depth`` > 1 requires ``binary=True`` (the text protocol
    stays strictly one-in-flight).
    """
    if pipeline_depth > 1 and not binary:
        raise ValueError("pipelining requires the binary wire protocol")
    if paths is None:
        paths = workload_paths(workload)
    counts: Dict[str, int] = {"ok": 0, "err": 0, "disconnects": 0}
    latencies: List[float] = []
    started = time.monotonic()
    deadline = started + duration
    if pipeline_depth > 1:
        loops = [
            _pipelined_client_loop(
                host,
                port,
                "c%d" % index,
                paths,
                deadline,
                seed * 1000 + index,
                counts,
                txn_locks=txn_locks,
                write_ratio=write_ratio,
                pipeline_depth=pipeline_depth,
                latencies=latencies,
            )
            for index in range(clients)
        ]
    else:
        loops = [
            _client_loop(
                host,
                port,
                "c%d" % index,
                paths,
                deadline,
                seed * 1000 + index,
                counts,
                txn_locks=txn_locks,
                write_ratio=write_ratio,
                binary=binary,
                latencies=latencies,
            )
            for index in range(clients)
        ]
    await asyncio.gather(*loops)
    elapsed = time.monotonic() - started
    stats_client = await ServiceClient(host, port).connect()
    try:
        server_stats = await stats_client.stats()
    finally:
        await stats_client.close()
    latencies.sort()
    return {
        "clients": clients,
        "duration": duration,
        "elapsed": elapsed,
        "ok": counts["ok"],
        "err": counts["err"],
        "disconnects": counts["disconnects"],
        "req_per_sec": counts["ok"] / elapsed if elapsed > 0 else 0.0,
        "binary": binary,
        "pipeline_depth": pipeline_depth,
        "latency_ms": {
            "p50": round(_percentile(latencies, 0.50) * 1000.0, 3),
            "p95": round(_percentile(latencies, 0.95) * 1000.0, 3),
            "p99": round(_percentile(latencies, 0.99) * 1000.0, 3),
        },
        "server": server_stats,
    }
