"""A lock manager partitioned into N independent shard tables.

:class:`ShardedLockManager` is a drop-in replacement for
:class:`~repro.locking.manager.LockManager`: same call surface, same
observable behavior — the differential suite replays whole workloads
against both and requires bit-identical lock traces.  Internally every
resource is routed to one of N :class:`~repro.locking.lock_table.
LockTable` shards by its interned id (:func:`shard_of`), so there is no
global lock table and no shard ever inspects another shard's state on
the request path.  Three things genuinely cross shards:

* **release order at EOT** — the single table wakes waiters in the
  victim's global first-grant order (it walks its insertion-ordered
  per-transaction resource index).  The manager therefore keeps its own
  global grant-order index and drives each shard's per-resource release
  body (:meth:`LockTable._release_resource`) in that order;
* **deadlock detection** — waits-for cycles can span shards; the
  :class:`_AggregateTable` facade concatenates the per-shard memoized
  edge lists (each shard's edges stay cached on its entries) and sums
  the per-shard wait-graph versions into one quiescence stamp, so the
  unchanged :class:`~repro.locking.deadlock.DeadlockDetector` runs over
  the union graph with the same O(1) re-check on a quiet system;
* **auditing** — the verifier and the fault harness introspect
  ``manager.table``; the facade merges the per-shard views on demand.

Routing is a pure function of the interned id: the router interner is
append-only (ids are never reused), so ``shard_of`` is stable across
interner growth and a compiled plan's resources never migrate.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.errors import LockError
from repro.locking.deadlock import DeadlockDetector
from repro.locking.lock_table import LockRequest, LockTable
from repro.locking.modes import LockMode
from repro.nf2.surrogate import ResourceInterner


def shard_of(router: ResourceInterner, resource, n_shards: int) -> int:
    """The shard owning ``resource``: ``intern(resource) % n_shards``.

    Pure in the interned id — the router never reassigns ids, so the
    answer for a given resource is fixed at first touch and survives
    arbitrary interner growth.
    """
    return router.intern(resource) % n_shards


class _AggregateTable:
    """Read-mostly union view over a manager's shard tables.

    Everything the rest of the library expects of ``manager.table`` —
    the verifier's entry scans, the deadlock detector's edge reads, the
    fault harness's leak checks, the trace wrapper's ``holds_at_least``
    pruning — is answered by merging the shard tables.  Writes route:
    ``cancel`` goes to the owning shard (through the manager, which
    keeps its grant-order index current) and setting ``fault_injector``
    fans the injector out to every shard.
    """

    def __init__(self, manager: "ShardedLockManager"):
        self._manager = manager

    @property
    def _shards(self) -> List[LockTable]:
        return self._manager.shards

    # -- fault injection: one injector, fanned out to every shard ----------

    @property
    def fault_injector(self):
        return self._manager._fault_injector

    @fault_injector.setter
    def fault_injector(self, injector):
        self._manager._fault_injector = injector
        for shard in self._shards:
            shard.fault_injector = injector

    # -- merged inspection ---------------------------------------------------

    @property
    def _entries(self) -> Dict[object, object]:
        merged: Dict[object, object] = {}
        for shard in self._shards:
            merged.update(shard._entries)
        return merged

    @property
    def _txn_modes(self) -> Dict[object, Dict[object, LockMode]]:
        merged: Dict[object, Dict[object, LockMode]] = {}
        for shard in self._shards:
            for txn, modes in shard._txn_modes.items():
                merged.setdefault(txn, {}).update(modes)
        return merged

    @property
    def _txn_waiting(self) -> Dict[object, Set[LockRequest]]:
        merged: Dict[object, Set[LockRequest]] = {}
        for shard in self._shards:
            for txn, waiting in shard._txn_waiting.items():
                merged.setdefault(txn, set()).update(waiting)
        return merged

    def holders(self, resource) -> Dict[object, LockMode]:
        return self._manager.shard_table(resource).holders(resource)

    def held_mode(self, txn, resource) -> Optional[LockMode]:
        return self._manager.shard_table(resource).held_mode(txn, resource)

    def holds_at_least(self, txn, resource, mode: LockMode) -> bool:
        return self._manager.shard_table(resource).holds_at_least(
            txn, resource, mode
        )

    def resources_of(self, txn) -> Set[object]:
        out: Set[object] = set()
        for shard in self._shards:
            out.update(shard.resources_of(txn))
        return out

    def locked_resources(self) -> List[object]:
        out: List[object] = []
        for shard in self._shards:
            out.extend(shard.locked_resources())
        return out

    def lock_count(self) -> int:
        return sum(shard.lock_count() for shard in self._shards)

    def waiting_requests(self) -> List[LockRequest]:
        out: List[LockRequest] = []
        for shard in self._shards:
            out.extend(shard.waiting_requests())
        return out

    def waiting_requests_of(self, txn) -> List[LockRequest]:
        out: List[LockRequest] = []
        for shard in self._shards:
            out.extend(shard.waiting_requests_of(txn))
        return out

    # -- waits-for union graph ----------------------------------------------

    @property
    def wait_graph_version(self) -> int:
        """Sum of the shard stamps: moves iff some shard's graph moved."""
        return sum(shard.wait_graph_version for shard in self._shards)

    def waits_for_edges(self) -> List[Tuple[object, object]]:
        """Edges of the union graph, concatenated in shard-index order.

        Each shard keeps its per-entry memo, so a detector pass over a
        quiescent system is a list concatenation, exactly as on one
        table.  Edge *order* differs from the single table's (shard
        order, not global entry-creation order) — victim selection is
        order-invariant (max over the cycle), so this is unobservable
        whenever at most one cycle exists at a time.
        """
        edges: List[Tuple[object, object]] = []
        for shard in self._shards:
            edges.extend(shard.waits_for_edges())
        return edges

    # -- summed counters ------------------------------------------------------

    @property
    def summary_version(self) -> int:
        return sum(shard.summary_version for shard in self._shards)

    @property
    def requests(self) -> int:
        return sum(shard.requests for shard in self._shards)

    @property
    def immediate_grants(self) -> int:
        return sum(shard.immediate_grants for shard in self._shards)

    @property
    def waits(self) -> int:
        return sum(shard.waits for shard in self._shards)

    @property
    def conflict_tests(self) -> int:
        return sum(shard.conflict_tests for shard in self._shards)

    @property
    def max_entries(self) -> int:
        return sum(shard.max_entries for shard in self._shards)

    @property
    def summary_rebuilds(self) -> int:
        return sum(shard.summary_rebuilds for shard in self._shards)

    # -- routed writes --------------------------------------------------------

    def cancel(self, request: LockRequest) -> List[LockRequest]:
        return self._manager.cancel(request)

    def release(self, txn, resource) -> List[LockRequest]:
        return self._manager.release(txn, resource)

    def release_all(self, txn, keep_long: bool = False) -> List[LockRequest]:
        return self._manager.release_all(txn, keep_long=keep_long)

    # -- long-lock persistence ------------------------------------------------

    def dump_long_locks(self) -> List[Tuple[object, object, str]]:
        out: List[Tuple[object, object, str]] = []
        for shard in self._shards:
            out.extend(shard.dump_long_locks())
        return out

    def restore_long_locks(self, dump):
        manager = self._manager
        for txn, resource, mode_name in dump:
            request = manager.shard_table(resource).request(
                txn, resource, LockMode(mode_name), long=True, wait=False
            )
            if not request.granted:  # pragma: no cover - wait=False raises
                raise LockError(
                    "could not restore long lock on %r" % (resource,)
                )
            manager._note_granted(request)

    # -- dense-mode mirrors (present only when the shards are dense) ---------

    def dense_summary(self, txn) -> Optional[Dict[int, int]]:
        """Merged int-keyed held-mode summary (dense shards only)."""
        merged: Dict[int, int] = {}
        for shard in self._shards:
            codes = getattr(shard, "_txn_codes", {}).get(txn)
            if codes:
                merged.update(codes)
        return merged or None

    @property
    def _txn_codes(self) -> Dict[object, Dict[int, int]]:
        merged: Dict[object, Dict[int, int]] = {}
        for shard in self._shards:
            for txn, codes in getattr(shard, "_txn_codes", {}).items():
                merged.setdefault(txn, {}).update(codes)
        return merged


class ShardedLockManager:
    """N shard lock tables behind the :class:`LockManager` call surface.

    ``shards`` are plain :class:`LockTable` instances (or
    :class:`~repro.locking.dense.DenseLockTable` sharing the router
    interner when ``use_dense_path``); ``table`` is the
    :class:`_AggregateTable` facade the rest of the library introspects,
    and ``detector`` is the stock deadlock detector running over that
    facade's union waits-for graph.
    """

    def __init__(
        self,
        n_shards: int = 4,
        age_of=None,
        reader_bypass: bool = False,
        use_dense_path: bool = False,
        pool_records: bool = True,
        router: Optional[ResourceInterner] = None,
    ):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        #: the routing interner: resource -> dense id, append-only, so
        #: ``shard_of`` is a pure, growth-stable function of the resource
        self.router = router if router is not None else ResourceInterner()
        self.n_shards = n_shards
        if use_dense_path:
            from repro.locking.dense import DenseLockTable

            # dense shards share the router: plan ids and shard routing
            # speak the same id space
            self.shards: List[LockTable] = [
                DenseLockTable(
                    reader_bypass=reader_bypass,
                    interner=self.router,
                    pool_records=pool_records,
                )
                for _ in range(n_shards)
            ]
        else:
            self.shards = [
                LockTable(reader_bypass=reader_bypass)
                for _ in range(n_shards)
            ]
        self.use_dense_path = use_dense_path
        self._fault_injector = None
        self.table = _AggregateTable(self)
        if use_dense_path:
            # the dense-state audit gates on ``table.interner``
            self.table.interner = self.router
        self.detector = DeadlockDetector(self.table, age_of=age_of)
        #: txn -> {resource: None}: global first-grant order across all
        #: shards — the walk order of :meth:`release_all`, which is what
        #: keeps EOT wake order identical to the single table's
        self._txn_order: Dict[object, Dict[object, None]] = {}
        #: optional callback(list-of-woken-LockRequests), invoked after
        #: any release/cancel that granted queued waiters — the asyncio
        #: server resolves its wait futures from here
        self.on_wake = None

    # -- routing --------------------------------------------------------------

    def shard_of(self, resource) -> int:
        return shard_of(self.router, resource, self.n_shards)

    def shard_table(self, resource) -> LockTable:
        return self.shards[self.shard_of(resource)]

    def set_age_of(self, age_of) -> "ShardedLockManager":
        self.detector.set_age_of(age_of)
        return self

    # -- grant-order bookkeeping ----------------------------------------------

    def _note_granted(self, request: LockRequest):
        # dict insert keeps the first position on re-grant: order is
        # *first*-grant order, matching the single table's index
        self._txn_order.setdefault(request.txn, {})[request.resource] = None

    def _note_woken(self, woken: List[LockRequest]):
        for request in woken:
            self._note_granted(request)
        if woken and self.on_wake is not None:
            self.on_wake(woken)

    def _note_released(self, txn, resource):
        order = self._txn_order.get(txn)
        if order is not None:
            order.pop(resource, None)
            if not order:
                del self._txn_order[txn]

    # -- the LockManager surface ----------------------------------------------

    def acquire(
        self,
        txn,
        resource,
        mode: LockMode,
        long: bool = False,
        wait: bool = True,
    ) -> LockRequest:
        request = self.shard_table(resource).request(
            txn, resource, mode, long=long, wait=wait
        )
        if request.granted:
            self._note_granted(request)
            if self._fault_injector is not None:
                self._fault_injector.fire(
                    "lock.grant", txn=txn, resource=resource, mode=mode
                )
        return request

    def acquire_many(
        self, txn, steps, long: bool = False, wait: bool = True
    ) -> List[LockRequest]:
        """Batched plan acquisition, split into per-shard runs.

        The ordered plan is cut into maximal runs of consecutive
        same-shard steps; each run goes through its shard's
        ``request_many`` (covered-pair pruning against that shard's
        held-mode summary, at most the run's last request WAITING).
        Semantics per step are identical to the single table's batched
        pass — pruning is per (txn, resource) and therefore shard-local.
        """
        out: List[LockRequest] = []
        run: List[Tuple[object, LockMode]] = []
        run_shard = -1
        blocked = False
        try:
            for resource, mode in steps:
                shard = self.shard_of(resource)
                if shard != run_shard and run:
                    granted = self.shards[run_shard].request_many(
                        txn, run, long=long, wait=wait
                    )
                    out.extend(granted)
                    run = []
                    if granted and not granted[-1].granted:
                        blocked = True
                        break
                run_shard = shard
                run.append((resource, mode))
            if run and not blocked:
                out.extend(
                    self.shards[run_shard].request_many(
                        txn, run, long=long, wait=wait
                    )
                )
        finally:
            # wait=False conflicts raise mid-plan with the prefix granted
            # (the caller's abort path releases it) — the grant-order
            # index must cover that prefix too
            for request in out:
                if request.granted:
                    self._note_granted(request)
        if (
            out
            and out[-1].granted
            and self._fault_injector is not None
        ):
            last = out[-1]
            self._fault_injector.fire(
                "lock.grant", txn=txn, resource=last.resource, mode=last.mode
            )
        return out

    def release(self, txn, resource) -> List[LockRequest]:
        shard = self.shard_table(resource)
        woken = shard.release(txn, resource)
        if shard.held_mode(txn, resource) is None:
            self._note_released(txn, resource)
        self._note_woken(woken)
        return woken

    def release_all(self, txn, keep_long: bool = False) -> List[LockRequest]:
        """EOT release across shards, in global first-grant order.

        Walks the manager's own grant-order index (not any shard's) and
        runs each resource's release body on its owning shard — wake
        order is therefore the same global grant order the single table
        produces.  Waiting-only resources (the txn queued but never got
        granted) are appended afterwards, as on one table.
        """
        if self._fault_injector is not None:
            self._fault_injector.fire("lock.release", txn=txn, resource=None)
        resources = list(self._txn_order.get(txn, ()))
        touched = set(resources)
        for shard in self.shards:
            for request in shard.waiting_requests_of(txn):
                if request.resource not in touched:
                    touched.add(request.resource)
                    resources.append(request.resource)
        woken: List[LockRequest] = []
        for resource in resources:
            woken.extend(
                self.shard_table(resource)._release_resource(
                    txn, resource, keep_long
                )
            )
        if not keep_long:
            for shard in self.shards:
                shard._txn_resources.pop(txn, None)
                shard._summary_clear(txn)
            self._txn_order.pop(txn, None)
        else:
            order = self._txn_order.get(txn)
            if order is not None:
                for resource in resources:
                    if (
                        self.shard_table(resource).held_mode(txn, resource)
                        is None
                    ):
                        order.pop(resource, None)
                if not order:
                    del self._txn_order[txn]
        self._note_woken(woken)
        return woken

    def cancel(self, request: LockRequest) -> List[LockRequest]:
        woken = self.shard_table(request.resource).cancel(request)
        self._note_woken(woken)
        return woken

    def holders(self, resource) -> Dict[object, LockMode]:
        return self.table.holders(resource)

    def held_mode(self, txn, resource) -> Optional[LockMode]:
        return self.table.held_mode(txn, resource)

    def holds_at_least(self, txn, resource, mode: LockMode) -> bool:
        return self.table.holds_at_least(txn, resource, mode)

    def locks_of(self, txn) -> Dict[object, LockMode]:
        return {
            resource: self.table.held_mode(txn, resource)
            for resource in self.table.resources_of(txn)
        }

    def lock_count(self) -> int:
        return self.table.lock_count()

    # -- deadlock handling ----------------------------------------------------

    def detect_deadlock(self) -> Optional[List[object]]:
        return self.detector.check()

    def resolve_deadlocks(self, abort_callback) -> List[object]:
        victims = []
        while True:
            cycle = self.detector.check()
            if cycle is None:
                return victims
            victim = self.detector.pick_victim(cycle)
            victims.append(victim)
            abort_callback(victim)

    # -- metrics --------------------------------------------------------------

    def metrics(self) -> Dict[str, int]:
        return {
            "requests": self.table.requests,
            "immediate_grants": self.table.immediate_grants,
            "waits": self.table.waits,
            "conflict_tests": self.table.conflict_tests,
            "max_entries": self.table.max_entries,
            "summary_rebuilds": self.table.summary_rebuilds,
            "deadlocks": self.detector.deadlocks_found,
            "shards": self.n_shards,
        }

    def reset_metrics(self):
        for shard in self.shards:
            shard.requests = 0
            shard.immediate_grants = 0
            shard.waits = 0
            shard.conflict_tests = 0
            shard.max_entries = 0
            shard.summary_rebuilds = 0
        self.detector.deadlocks_found = 0
