"""Wire protocol v2: length-prefixed binary framing for the lock service.

The PR 7 line protocol spends most of its budget on transport, not on
locks: one UTF-8 line per request, one ``readline()`` and one ``drain()``
per response, resources spelled as slash paths re-parsed on every frame.
This module defines the binary framing negotiated by the ``HELLO BINARY``
upgrade (the text protocol stays as the debug/fallback path):

    +--------+--------+----------+------------------+
    | u32 length      | u8 opcode| u32 correlation  |  ... body ...
    +-----------------+----------+------------------+

* ``length`` counts every byte after the length field itself (opcode +
  correlation id + body, so ``length == 5 + len(body)``) — big-endian,
  like everything else in the header;
* ``opcode`` selects the request/response kind (tables below);
* ``correlation id`` is echoed verbatim on the response, which is what
  makes pipelining safe: a client may keep N requests in flight and
  match responses by id.  The server *begins* a connection's frames in
  arrival order, but a frame that waits (a parked lock, modelled shard
  latency) no longer blocks the frames behind it, so responses may
  complete out of order — the id, not the position, names the request.

Resources travel as **dense interned ids** — the same append-only
:class:`~repro.nf2.surrogate.ResourceInterner` codes the PR 5 fast path
and the shard router use — so the hot path never re-parses a path
string.  Clients learn the id table with ``OP_RESOURCES`` after the
upgrade and extend it on demand with ``OP_INTERN``.

Request opcodes (client -> server)::

    0x01 OP_START         txn:utf8
    0x02 OP_LOCK          mode:u8 flags:u8 rid:u32 txn:utf8
    0x03 OP_ACQUIRE_MANY  flags:u8 count:u16 (rid:u32 mode:u8)*count txn:utf8
    0x04 OP_UNLOCK        rid:u32 txn:utf8
    0x05 OP_END           txn:utf8
    0x06 OP_STATS         (empty)
    0x07 OP_RESOURCES     (empty)
    0x08 OP_INTERN        path:utf8
    0x09 OP_MODES         (empty)

Response opcodes (server -> client)::

    0x80 RESP_OK          detail:utf8          (the text frame minus "OK ")
    0x81 RESP_GRANTED     steps:u32 detail:utf8
    0x82 RESP_STATS       json:utf8
    0x83 RESP_RESOURCES   count:u32 (rid:u32 len:u16 path:utf8)*count
    0x84 RESP_INTERNED    rid:u32
    0xFF RESP_ERR         code:u8 detail:utf8  (the text frame minus "ERR ")

``mode`` bytes are :attr:`~repro.locking.modes.LockMode.code` values
(``MODES_BY_CODE`` inverts them); ``flags`` bit 0 is NOWAIT.  The
semantic mode codes (SI/AP/INC and their intention forms) are accepted
only by a server whose stack runs ``use_semantic_modes``; elsewhere
they answer ``ERR BAD-MODE`` exactly as an out-of-range code does.
``OP_MODES`` reports the accepted vocabulary as a plain ``RESP_OK``
frame (``MODES <name>,<name>,...``), so no response opcode was added.  Error
``detail`` strings start with the same machine-readable token the text
protocol uses (``CONFLICT``, ``DEADLOCK``, ...), so a binary client can
reconstruct the exact text-equivalent response — the property the wire
differential harness leans on.

Every encoder here has a decoder inverse; the golden byte pins live in
``tests/service/test_wire_protocol.py`` together with a Hypothesis
round-trip property over random frames and arbitrary TCP chunkings.
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Optional, Tuple

#: Default frame-size ceiling (bytes counted by the header length field).
#: Applies to both directions and, on the server, to text lines too — an
#: oversized frame earns ``ERR FRAME_TOO_LONG`` instead of a teardown.
DEFAULT_MAX_FRAME = 64 * 1024

HEADER = struct.Struct("!IBI")  # length, opcode, correlation id
HEADER_SIZE = HEADER.size  # 9 bytes; `length` covers the last 5 of them

# -- opcodes ------------------------------------------------------------------

OP_START = 0x01
OP_LOCK = 0x02
OP_ACQUIRE_MANY = 0x03
OP_UNLOCK = 0x04
OP_END = 0x05
OP_STATS = 0x06
OP_RESOURCES = 0x07
OP_INTERN = 0x08
OP_MODES = 0x09

RESP_OK = 0x80
RESP_GRANTED = 0x81
RESP_STATS = 0x82
RESP_RESOURCES = 0x83
RESP_INTERNED = 0x84
RESP_ERR = 0xFF

REQUEST_OPCODES = (
    OP_START,
    OP_LOCK,
    OP_ACQUIRE_MANY,
    OP_UNLOCK,
    OP_END,
    OP_STATS,
    OP_RESOURCES,
    OP_INTERN,
    OP_MODES,
)
RESPONSE_OPCODES = (
    RESP_OK,
    RESP_GRANTED,
    RESP_STATS,
    RESP_RESOURCES,
    RESP_INTERNED,
    RESP_ERR,
)

FLAG_NOWAIT = 0x01

#: Machine-readable error tokens -> u8 wire codes.  0 is reserved for
#: "unclassified" (a token this table does not know).
ERR_CODES = {
    "BAD-FRAME": 1,
    "UNKNOWN-VERB": 2,
    "UNKNOWN-OPCODE": 3,
    "BAD-MODE": 4,
    "UNKNOWN-RESOURCE": 5,
    "NOTXN": 6,
    "TXN-ACTIVE": 7,
    "NOT-HELD": 8,
    "CONFLICT": 9,
    "TIMEOUT": 10,
    "DEADLOCK": 11,
    "DENIED": 12,
    "FAULT": 13,
    "FRAME_TOO_LONG": 14,
}
ERR_NAMES = {code: name for name, code in ERR_CODES.items()}


class WireError(Exception):
    """A malformed frame (bad opcode, truncated body, bogus length)."""


class FrameTooLong(WireError):
    """A header announced a frame larger than the negotiated maximum."""

    def __init__(self, opcode: int, corr: int, length: int):
        super().__init__("frame of %d bytes exceeds the maximum" % length)
        self.opcode = opcode
        self.corr = corr
        self.length = length


def pack_frame(opcode: int, corr: int, body: bytes = b"") -> bytes:
    """One complete frame: header + body."""
    return HEADER.pack(5 + len(body), opcode, corr) + body


# -- request bodies -----------------------------------------------------------

_LOCK_BODY = struct.Struct("!BBI")
_AM_HEAD = struct.Struct("!BH")
_AM_STEP = struct.Struct("!IB")
_U32 = struct.Struct("!I")
_U16 = struct.Struct("!H")


def _txn_only(fields) -> bytes:
    (txn,) = fields
    return txn.encode("utf-8")


def _unpack_txn_only(buf, start, end):
    return (bytes(buf[start:end]).decode("utf-8"),)


def _pack_lock(fields) -> bytes:
    mode_code, flags, rid, txn = fields
    return _LOCK_BODY.pack(mode_code, flags, rid) + txn.encode("utf-8")


def _unpack_lock(buf, start, end):
    if end - start < _LOCK_BODY.size:
        raise WireError("truncated LOCK body")
    mode_code, flags, rid = _LOCK_BODY.unpack_from(buf, start)
    txn = bytes(buf[start + _LOCK_BODY.size : end]).decode("utf-8")
    return (mode_code, flags, rid, txn)


def _pack_acquire_many(fields) -> bytes:
    flags, steps, txn = fields
    parts = [_AM_HEAD.pack(flags, len(steps))]
    for rid, mode_code in steps:
        parts.append(_AM_STEP.pack(rid, mode_code))
    parts.append(txn.encode("utf-8"))
    return b"".join(parts)


def _unpack_acquire_many(buf, start, end):
    if end - start < _AM_HEAD.size:
        raise WireError("truncated ACQUIRE_MANY body")
    flags, count = _AM_HEAD.unpack_from(buf, start)
    offset = start + _AM_HEAD.size
    need = count * _AM_STEP.size
    if end - offset < need:
        raise WireError("truncated ACQUIRE_MANY steps")
    steps = tuple(
        _AM_STEP.unpack_from(buf, offset + i * _AM_STEP.size)
        for i in range(count)
    )
    txn = bytes(buf[offset + need : end]).decode("utf-8")
    return (flags, steps, txn)


def _pack_unlock(fields) -> bytes:
    rid, txn = fields
    return _U32.pack(rid) + txn.encode("utf-8")


def _unpack_unlock(buf, start, end):
    if end - start < 4:
        raise WireError("truncated UNLOCK body")
    (rid,) = _U32.unpack_from(buf, start)
    txn = bytes(buf[start + 4 : end]).decode("utf-8")
    return (rid, txn)


def _pack_empty(fields) -> bytes:
    return b""


def _unpack_empty(buf, start, end):
    return ()


def _pack_path(fields) -> bytes:
    (path,) = fields
    return path.encode("utf-8")


def _unpack_path(buf, start, end):
    return (bytes(buf[start:end]).decode("utf-8"),)


_REQ_PACK = {
    OP_START: _txn_only,
    OP_LOCK: _pack_lock,
    OP_ACQUIRE_MANY: _pack_acquire_many,
    OP_UNLOCK: _pack_unlock,
    OP_END: _txn_only,
    OP_STATS: _pack_empty,
    OP_RESOURCES: _pack_empty,
    OP_INTERN: _pack_path,
    OP_MODES: _pack_empty,
}
_REQ_UNPACK = {
    OP_START: _unpack_txn_only,
    OP_LOCK: _unpack_lock,
    OP_ACQUIRE_MANY: _unpack_acquire_many,
    OP_UNLOCK: _unpack_unlock,
    OP_END: _unpack_txn_only,
    OP_STATS: _unpack_empty,
    OP_RESOURCES: _unpack_empty,
    OP_INTERN: _unpack_path,
    OP_MODES: _unpack_empty,
}


# -- response bodies ----------------------------------------------------------

def _pack_detail(fields) -> bytes:
    (detail,) = fields
    return detail.encode("utf-8")


def _unpack_detail(buf, start, end):
    return (bytes(buf[start:end]).decode("utf-8"),)


def _pack_granted(fields) -> bytes:
    steps, detail = fields
    return _U32.pack(steps) + detail.encode("utf-8")


def _unpack_granted(buf, start, end):
    if end - start < 4:
        raise WireError("truncated GRANTED body")
    (steps,) = _U32.unpack_from(buf, start)
    detail = bytes(buf[start + 4 : end]).decode("utf-8")
    return (steps, detail)


def _pack_resources(fields) -> bytes:
    (entries,) = fields
    parts = [_U32.pack(len(entries))]
    for rid, path in entries:
        raw = path.encode("utf-8")
        parts.append(_U32.pack(rid))
        parts.append(_U16.pack(len(raw)))
        parts.append(raw)
    return b"".join(parts)


def _unpack_resources(buf, start, end):
    if end - start < 4:
        raise WireError("truncated RESOURCES body")
    (count,) = _U32.unpack_from(buf, start)
    offset = start + 4
    entries: List[Tuple[int, str]] = []
    for _ in range(count):
        if end - offset < 6:
            raise WireError("truncated RESOURCES entry")
        (rid,) = _U32.unpack_from(buf, offset)
        (path_len,) = _U16.unpack_from(buf, offset + 4)
        offset += 6
        if end - offset < path_len:
            raise WireError("truncated RESOURCES path")
        entries.append(
            (rid, bytes(buf[offset : offset + path_len]).decode("utf-8"))
        )
        offset += path_len
    return (tuple(entries),)


def _pack_interned(fields) -> bytes:
    (rid,) = fields
    return _U32.pack(rid)


def _unpack_interned(buf, start, end):
    if end - start < 4:
        raise WireError("truncated INTERNED body")
    return (_U32.unpack_from(buf, start)[0],)


def _pack_err(fields) -> bytes:
    code, detail = fields
    return bytes([code]) + detail.encode("utf-8")


def _unpack_err(buf, start, end):
    if end - start < 1:
        raise WireError("truncated ERR body")
    return (buf[start], bytes(buf[start + 1 : end]).decode("utf-8"))


_RESP_PACK = {
    RESP_OK: _pack_detail,
    RESP_GRANTED: _pack_granted,
    RESP_STATS: _pack_detail,
    RESP_RESOURCES: _pack_resources,
    RESP_INTERNED: _pack_interned,
    RESP_ERR: _pack_err,
}
_RESP_UNPACK = {
    RESP_OK: _unpack_detail,
    RESP_GRANTED: _unpack_granted,
    RESP_STATS: _unpack_detail,
    RESP_RESOURCES: _unpack_resources,
    RESP_INTERNED: _unpack_interned,
    RESP_ERR: _unpack_err,
}


# -- whole-frame helpers ------------------------------------------------------

def encode_request(opcode: int, corr: int, fields: tuple) -> bytes:
    try:
        pack = _REQ_PACK[opcode]
    except KeyError:
        raise WireError("unknown request opcode 0x%02x" % opcode)
    return pack_frame(opcode, corr, pack(fields))


def decode_request_fields(opcode: int, buf, start: int, end: int) -> tuple:
    """Decode a request body in place (no body slice is materialized
    beyond the strings the fields themselves need)."""
    try:
        unpack = _REQ_UNPACK[opcode]
    except KeyError:
        raise WireError("unknown request opcode 0x%02x" % opcode)
    return unpack(buf, start, end)


def encode_response(opcode: int, corr: int, fields: tuple) -> bytes:
    try:
        pack = _RESP_PACK[opcode]
    except KeyError:
        raise WireError("unknown response opcode 0x%02x" % opcode)
    return pack_frame(opcode, corr, pack(fields))


def decode_response_fields(opcode: int, buf, start: int, end: int) -> tuple:
    try:
        unpack = _RESP_UNPACK[opcode]
    except KeyError:
        raise WireError("unknown response opcode 0x%02x" % opcode)
    return unpack(buf, start, end)


def frame_for_response(corr: int, text: str) -> bytes:
    """The binary frame carrying the same payload as text response ``text``.

    The binary path renders through the *same* text renderer the line
    protocol uses and re-frames here, so the two protocols cannot drift:
    a binary client reconstructs the text frame verbatim with
    :func:`response_to_text` (the wire differential pins this).
    """
    if text.startswith("OK STATS "):
        return encode_response(RESP_STATS, corr, (text[len("OK STATS ") :],))
    if text.startswith("OK GRANTED "):
        head, _, steps = text.rpartition(" steps=")
        return encode_response(
            RESP_GRANTED, corr, (int(steps), head[len("OK GRANTED ") :])
        )
    if text.startswith("OK "):
        return encode_response(RESP_OK, corr, (text[len("OK ") :],))
    detail = text[len("ERR ") :] if text.startswith("ERR ") else text
    code = ERR_CODES.get(detail.split(" ", 1)[0], 0)
    return encode_response(RESP_ERR, corr, (code, detail))


def response_to_text(opcode: int, fields: tuple) -> str:
    """Reconstruct the text-equivalent response frame (inverse of
    :func:`frame_for_response`)."""
    if opcode == RESP_OK:
        return "OK %s" % fields[0]
    if opcode == RESP_GRANTED:
        return "OK GRANTED %s steps=%d" % (fields[1], fields[0])
    if opcode == RESP_STATS:
        return "OK STATS %s" % fields[0]
    if opcode == RESP_ERR:
        return "ERR %s" % fields[1]
    raise WireError("opcode 0x%02x has no text equivalent" % opcode)


class FrameDecoder:
    """Incremental framer over a growable buffer.

    Feed arbitrary chunk boundaries; :meth:`frames` yields every complete
    ``(opcode, corr, body)`` in order.  A header announcing more than
    ``max_frame`` bytes raises :class:`FrameTooLong` (carrying the opcode
    and correlation id, so the caller can still answer the frame) and the
    decoder silently discards the oversized body as it arrives —
    the stream stays in sync, no teardown required.
    """

    def __init__(self, max_frame: int = DEFAULT_MAX_FRAME):
        self.max_frame = max_frame
        self._buffer = bytearray()
        self._skip = 0  # oversized-body bytes still to discard

    def feed(self, data: bytes):
        self._buffer.extend(data)

    def __len__(self):
        return len(self._buffer)

    def frames(self) -> Iterator[Tuple[int, int, bytes]]:
        buffer = self._buffer
        while True:
            if self._skip:
                drop = min(self._skip, len(buffer))
                del buffer[:drop]
                self._skip -= drop
                if self._skip:
                    return
            if len(buffer) < HEADER_SIZE:
                return
            length, opcode, corr = HEADER.unpack_from(buffer, 0)
            if length < 5:
                raise WireError("frame length %d below header size" % length)
            if length > self.max_frame:
                del buffer[:HEADER_SIZE]
                self._skip = length - 5
                raise FrameTooLong(opcode, corr, length)
            if len(buffer) - 4 < length:
                return
            end = 4 + length
            body = bytes(buffer[HEADER_SIZE:end])
            del buffer[:end]
            yield opcode, corr, body
