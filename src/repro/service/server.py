"""The asyncio lock server: text and binary wire protocols over a sharded
lock stack.

One :class:`LockServer` owns a :class:`~repro.LockStack` whose manager is
a :class:`~repro.service.sharded.ShardedLockManager` (or, behind
``--workers K``, a :class:`~repro.service.workers.WorkerProxyManager`
fronting true multiprocess shard workers).  Clients start in the line
protocol (one request line, one response line, UTF-8):

    START <txn>
    SLOCK <txn> <path> [NOWAIT]        S on the node, full protocol plan
    XLOCK <txn> <path> [NOWAIT]        X on the node, full protocol plan
    ISLOCK <txn> <path> [NOWAIT]       IS on the node + IS ancestors
    IXLOCK <txn> <path> [NOWAIT]       IX on the node + IX ancestors
    SILOCK/APLOCK/INCLOCK <txn> <path> [NOWAIT]
                                       semantic commuting-update plan
    ISILOCK/IAPLOCK/IINCLOCK <txn> <path> [NOWAIT]
                                       semantic intention chain
    ACQUIRE_MANY <txn> <path>:<MODE>[,<path>:<MODE>...] [NOWAIT]
    UNLOCK <txn> <path>
    END <txn>
    STATS
    MODES
    HELLO TEXT|BINARY

The semantic verbs (``SILOCK``/``APLOCK``/``INCLOCK`` and their
intention forms) exist only when the served stack was built with
``use_semantic_modes=True``; against a classic stack they answer ``ERR
UNKNOWN-VERB`` and the matching binary mode codes answer ``ERR
BAD-MODE`` — exactly the frames a PR 8 server produced, which is what
keeps the flag-off wire differential bit-identical.  ``MODES`` (binary:
``OP_MODES``) reports the mode vocabulary the server accepts, so a
client can discover the flag without tripping over it.

``HELLO BINARY`` upgrades the connection to the length-prefixed binary
framing of :mod:`repro.service.wire` (dense interned resource ids on the
wire, correlation ids, pipelining); the text protocol stays as the
debug/fallback path.  ``<path>`` is a slash-joined resource tuple
(``db1/seg1/cells/c1``).  Responses are ``OK ...`` or ``ERR <CODE> ...``
— see docs/SERVICE.md for the frame grammar and
tests/service/test_protocol_conformance.py plus
tests/service/test_binary_conformance.py for golden transcripts.

Both protocols run through one connection loop over a self-managed
growable buffer (no ``readline()``): complete frames are decoded in
place, dispatched in FIFO order, and their responses coalesce into a
single ``write()`` + ``drain()`` per ready-batch — the transport half of
the wire-protocol speedup.  Binary responses are produced by rendering
the *text* response first and re-framing it
(:func:`~repro.service.wire.frame_for_response`), so the two protocols
cannot drift.  An oversized frame (text line or binary header) earns a
clean ``ERR FRAME_TOO_LONG`` reply and the connection stays up, where
the old ``readline()`` path tore the session down with
``LimitOverrunError``.

Concurrency model: the event loop is single-threaded and every lock-table
mutation is synchronous, so state consistency never depends on the shard
mutexes — they model per-partition *admission*.  A lock request is cut
into per-shard runs (root-to-leaf order) and each run holds only its own
shard's ``asyncio.Lock`` while the shard table works, plus an optional
``shard_service_time`` sleep per submitted request modelling per-shard
storage latency; requests routed to different shards overlap, requests
to the same shard serialize.  EOT release is synchronous and charged to
no shard, keeping commit off the admission path.  A task never holds one
shard mutex while waiting for another (runs are sequential), and the one
multi-shard operation — the deadlock detector's stop-the-world snapshot
— takes mutexes in ascending shard order, the single global order, so
mutex deadlock is impossible by construction.  In workers mode the same
model holds, except manager operations are blocking pipe RPCs and run in
the default executor (the ``_call`` seam), never on the loop.

WAITING requests park on an :class:`asyncio.Future`; the manager's
``on_wake`` callback resolves the future when a release or cancellation
grants the queued request (marshalled via ``call_soon_threadsafe`` in
workers mode, where wakes surface on executor threads).  Responses
already queued behind a parked request are flushed *before* parking, so
a pipelined batch never sits on completed answers while one frame waits.
A cross-shard deadlock detector task snapshots the union waits-for graph
(all shard mutexes held) on an interval, nudged early whenever a request
starts waiting; victims are aborted through the transaction manager with
the bounded-retry pattern of the fault harness.

Fault injection: the server fires ``service.frame`` before parsing every
request frame (an injected error drops the connection — the mid-frame
client disconnect) and ``service.detector`` at the top of every detector
pass (an injected error skips the pass — a detector delay); both are
registered in :data:`repro.faults.plan.INJECTION_POINTS`.
"""

from __future__ import annotations

import asyncio
import functools
import json
from typing import Dict, List, Optional, Tuple

from repro.errors import (
    AuthorizationError,
    DeadlockError,
    FaultInjected,
    LockConflictError,
    LockError,
    LockTimeoutError,
    ProtocolError,
    TransactionError,
)
from repro.graphs.units import ancestors
from repro.locking.lock_table import LockRequest, RequestStatus
from repro.nf2.surrogate import ResourceInterner
from repro.locking.modes import (
    AP,
    CLASSIC_MODES,
    IAP,
    IINC,
    INC,
    IS,
    ISI,
    IX,
    MODES_BY_CODE,
    N_MODES,
    S,
    SI,
    X,
    LockMode,
)
from repro.service import wire
from repro.service.sharded import ShardedLockManager
from repro.txn.transaction import TxnState

#: Verbs that take <txn> <path> and run a lock plan.  The semantic verbs
#: only exist when the served stack runs with ``use_semantic_modes``;
#: otherwise they answer exactly as any unknown verb does, so a server
#: over a classic stack stays frame-for-frame identical to PR 8.
_PLAN_VERBS = {
    "SLOCK": S,
    "XLOCK": X,
    "ISLOCK": IS,
    "IXLOCK": IX,
    "SILOCK": SI,
    "APLOCK": AP,
    "INCLOCK": INC,
    "ISILOCK": ISI,
    "IAPLOCK": IAP,
    "IINCLOCK": IINC,
}

_READ_CHUNK = 64 * 1024


def register_database_resources(interner, database) -> List[tuple]:
    """Intern every schema-level resource of ``database`` in one
    deterministic order (database, segments, relations, objects).

    The server runs this at start and workers mode runs it again for the
    fork snapshot, so the dense ids a binary client learns over
    ``OP_RESOURCES`` are the very ids the shard router and the worker
    tables route on.
    """
    resources: List[tuple] = [(database.name,)]
    relations = database.relations()
    seen_segments = set()
    for relation in relations:
        if relation.segment not in seen_segments:
            seen_segments.add(relation.segment)
            resources.append((database.name, relation.segment))
    for relation in relations:
        resources.append((database.name, relation.segment, relation.name))
    for relation in relations:
        for obj in relation:
            resources.append(
                (database.name, relation.segment, relation.name, str(obj.key))
            )
    for resource in resources:
        interner.intern(resource)
    return resources


def make_service_stack(
    workload: str = "cells", shards: int = 4, workers: int = 0, **flags
):
    """A fresh served stack over one of the standard databases.

    ``workload`` picks the database: ``cells`` (the paper's figure-7
    robotics schema) or ``partlib`` (the part library of the check
    workloads).  ``shards`` goes to the ShardedLockManager; remaining
    flags are protocol ablation flags.  ``workers=K`` swaps the
    in-process shard tables for K multiprocess shard workers behind a
    :class:`~repro.service.workers.WorkerProxyManager`; the interner
    snapshot of the schema tree ships to every worker at fork.
    """
    import repro

    if workload == "partlib":
        from repro.check.workloads import build_check_partlib

        database, catalog = build_check_partlib()
    elif workload == "cells":
        from repro.workloads import build_cells_database

        database, catalog = build_cells_database(figure7=True)
    else:
        raise ValueError("unknown service workload %r" % (workload,))
    stack = repro.make_stack(database, catalog, shards=shards, **flags)
    if workers:
        if flags.get("use_dense_path"):
            raise ValueError("workers mode has no dense-path variant")
        from repro.nf2.surrogate import ResourceInterner
        from repro.service.workers import WorkerPool, WorkerProxyManager

        router = ResourceInterner()
        resources = register_database_resources(router, database)
        snapshot = [
            (router.intern(resource), "/".join(str(p) for p in resource))
            for resource in resources
        ]
        pool = WorkerPool(shards, workers, snapshot)
        proxy = WorkerProxyManager(pool, router)
        stack.manager = proxy
        stack.protocol.manager = proxy
    return stack


class _Session:
    """Per-connection state: named transactions plus wire-mode flags.

    Binary frames dispatch as concurrent tasks, so the session also
    carries the pipelining bookkeeping: the frame-order lock (frames
    *begin* in arrival order; a frame that parks releases it so later
    frames can proceed), the set of in-flight dispatch tasks, and a
    per-transaction in-flight count that lets ``END`` wait for its own
    transaction's frames without stalling anyone else's.
    """

    __slots__ = (
        "txns",
        "binary",
        "discarding",
        "skip",
        "order",
        "order_owner",
        "tasks",
        "inflight",
        "idle",
    )

    def __init__(self):
        self.txns: Dict[str, object] = {}
        self.binary = False  # upgraded via HELLO BINARY
        self.discarding = False  # swallowing the tail of an oversized line
        self.skip = 0  # oversized binary body bytes still to discard
        self.order = asyncio.Lock()
        self.order_owner: Optional[asyncio.Task] = None
        self.tasks: set = set()
        self.inflight: Dict[str, int] = {}  # txn name -> frames in flight
        self.idle: Dict[str, asyncio.Event] = {}  # set when count hits 0

    async def acquire_order(self):
        await self.order.acquire()
        self.order_owner = asyncio.current_task()

    def release_order(self):
        """Release the frame-order lock if this task still holds it.

        Idempotent per task: the first park inside a dispatch releases,
        the wrapper's ``finally`` then no-ops.  Text dispatches never
        acquire the lock, so this is a no-op for them too.
        """
        if self.order_owner is asyncio.current_task():
            self.order_owner = None
            self.order.release()

    def begin_frame(self, name: str):
        self.inflight[name] = self.inflight.get(name, 0) + 1

    def end_frame(self, name: str):
        count = self.inflight.get(name, 0) - 1
        if count > 0:
            self.inflight[name] = count
        else:
            self.inflight.pop(name, None)
            event = self.idle.pop(name, None)
            if event is not None:
                event.set()

    async def quiesce(self, name: str):
        """Park until no lock/unlock frame for ``name`` is in flight."""
        while self.inflight.get(name, 0):
            event = self.idle.setdefault(name, asyncio.Event())
            await event.wait()


class _Conn:
    """One connection's write side: responses coalesce in ``out`` and hit
    the socket as a single ``write()`` + ``drain()`` per flush."""

    __slots__ = ("writer", "out", "pending", "flush_task")

    def __init__(self, writer):
        self.writer = writer
        self.out = bytearray()
        self.pending = 0  # responses queued since the last flush
        self.flush_task: Optional[asyncio.Task] = None

    async def flush(self):
        if self.out:
            data = bytes(self.out)
            del self.out[:]
            self.writer.write(data)
            await self.writer.drain()


class LockServer:
    """Serve a sharded lock stack over the text and binary protocols."""

    def __init__(
        self,
        stack,
        host: str = "127.0.0.1",
        port: int = 0,
        shard_service_time: float = 0.0,
        detector_interval: float = 0.05,
        lock_timeout: float = 5.0,
        max_frame: int = wire.DEFAULT_MAX_FRAME,
        coalesce_writes: bool = True,
    ):
        from repro.service.workers import WorkerProxyManager

        manager = stack.manager
        if not isinstance(manager, (ShardedLockManager, WorkerProxyManager)):
            raise TypeError(
                "LockServer requires a ShardedLockManager or "
                "WorkerProxyManager stack"
            )
        self.stack = stack
        self.manager = manager
        #: workers-mode manager calls block on pipe RPCs — run them in
        #: the default executor so the event loop never stalls
        self._use_executor = isinstance(manager, WorkerProxyManager)
        self.host = host
        self.port = port
        #: per-submitted-request service latency charged inside the
        #: owning shard's mutex — the knob the shard-scaling benchmark
        #: turns (0.0 for functional tests: admission only, no latency)
        self.shard_service_time = shard_service_time
        self.detector_interval = detector_interval
        self.lock_timeout = lock_timeout
        #: frame-size ceiling for both protocols (text line length /
        #: binary header length field); an oversized frame is answered
        #: with ERR FRAME_TOO_LONG and the connection survives
        self.max_frame = max_frame
        #: False -> one drain per response (the BENCH_6 ablation knob)
        self.coalesce_writes = coalesce_writes
        #: optional :class:`repro.faults.FaultInjector` for the
        #: ``service.frame`` / ``service.detector`` points
        self.fault_injector = None
        self.stats: Dict[str, int] = {
            "frames": 0,
            "errors": 0,
            "sessions": 0,
            "binary_sessions": 0,
            "batches": 0,
            "max_batch": 0,
            "frames_too_long": 0,
            "deadlock_victims": 0,
            "timeouts": 0,
            "injected_disconnects": 0,
            "detector_delays": 0,
        }
        self._shard_locks: List[asyncio.Lock] = []
        self._futures: Dict[LockRequest, asyncio.Future] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._detector_task: Optional[asyncio.Task] = None
        self._nudge: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        #: rid -> resource tuple: everything reachable over the binary
        #: wire (the schema tree at start, plus OP_INTERN additions)
        self._rid_resources: Dict[int, tuple] = {}
        self._wire_ids = ResourceInterner()
        manager.on_wake = self._on_wake

    @property
    def _semantic_enabled(self) -> bool:
        """Whether the served stack accepts the semantic lock modes."""
        return bool(getattr(self.stack.protocol, "use_semantic_modes", False))

    def _accepts_mode(self, mode: LockMode) -> bool:
        return self._semantic_enabled or not mode.is_semantic

    def _modes_frame(self) -> str:
        accepted = (
            MODES_BY_CODE if self._semantic_enabled else CLASSIC_MODES
        )
        return "OK MODES %s" % ",".join(mode.value for mode in accepted)

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind, start serving and start the detector task."""
        self._loop = asyncio.get_running_loop()
        self._shard_locks = [
            asyncio.Lock() for _ in range(self.manager.n_shards)
        ]
        self._nudge = asyncio.Event()
        if self._use_executor:
            # wakes arrive on executor threads in workers mode
            self.manager.on_wake = self._on_wake_threadsafe
        self._register_resources()
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._detector_task = asyncio.create_task(self._detector_loop())
        return self.host, self.port

    async def stop(self):
        if self._detector_task is not None:
            self._detector_task.cancel()
            try:
                await self._detector_task
            except asyncio.CancelledError:
                pass
            self._detector_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._use_executor:
            self.manager.stop()

    async def serve_forever(self):
        await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    def _register_resources(self):
        """Build the wire-id table: the schema tree interned in one
        deterministic order, ready for export to binary clients over
        ``OP_RESOURCES``.

        The table lives in a *server-private* interner — the shard
        router keeps assigning its ids lazily on first touch, exactly
        as PR 7 did, so shard routing (and every behavior downstream of
        it) is identical whether or not a binary client ever connects.
        In workers mode the router was pre-seeded with the same
        registration order at fork, so there the two id spaces happen
        to coincide.
        """
        for resource in register_database_resources(
            self._wire_ids, self.stack.database
        ):
            self._rid_resources[self._wire_ids.intern(resource)] = resource

    # -- executor seam --------------------------------------------------------

    async def _call(self, fn, *args, **kwargs):
        """Run a manager/transaction mutation.

        In-process managers mutate synchronously on the loop (exactly
        the PR 7 behavior); the workers-mode proxy blocks on pipe RPCs,
        so it runs in the default executor instead.
        """
        if self._use_executor:
            return await self._loop.run_in_executor(
                None, functools.partial(fn, *args, **kwargs)
            )
        return fn(*args, **kwargs)

    # -- wake plumbing --------------------------------------------------------

    def _on_wake(self, woken: List[LockRequest]):
        for request in woken:
            future = self._futures.get(request)
            if future is not None and not future.done():
                future.set_result(True)

    def _on_wake_threadsafe(self, woken):
        self._loop.call_soon_threadsafe(self._on_wake, woken)

    # -- connection handling --------------------------------------------------

    async def _handle_client(self, reader, writer):
        session = _Session()
        conn = _Conn(writer)
        self.stats["sessions"] += 1
        buffer = bytearray()
        abandoned = False
        try:
            eof = False
            while not eof:
                chunk = await reader.read(_READ_CHUNK)
                if chunk:
                    buffer.extend(chunk)
                else:
                    eof = True
                if not await self._drain_frames(conn, session, buffer, eof):
                    # an injected disconnect or unrecoverable framing:
                    # drop without a reply; the cleanup below aborts the
                    # session's live transactions
                    abandoned = True
                    return
                await self._flush(conn)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            if abandoned:
                # the connection is being dropped mid-stream: unwind any
                # in-flight binary dispatches instead of letting them
                # finish against a peer that will never read the answers
                for task in list(session.tasks):
                    task.cancel()
            if session.tasks:
                # settle (or unwind) the in-flight dispatches before
                # aborting: aborting a transaction under its own running
                # frame would race the lock manager
                await asyncio.gather(
                    *list(session.tasks), return_exceptions=True
                )
            try:
                for txn in list(session.txns.values()):
                    if txn.state == TxnState.ACTIVE:
                        await self._abort_txn(txn)
            except asyncio.CancelledError:
                # server shutdown raced the abort RPC (workers mode runs
                # it in the executor); the pool teardown releases the
                # transaction's locks anyway
                pass
            session.txns.clear()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _drain_frames(self, conn, session, buffer, eof) -> bool:
        """Dispatch every complete frame in ``buffer``; False drops the
        connection.  Text frames dispatch inline, one round-trip at a
        time — the PR-7 semantics.  Binary frames spawn ordered dispatch
        tasks (:meth:`_binary_frame`), so a parked frame no longer
        head-of-line-blocks the frames queued behind it."""
        while True:
            if session.binary:
                progress, alive = self._next_binary(conn, session, buffer)
            else:
                progress, alive = await self._next_text(
                    conn, session, buffer, eof
                )
            if not alive:
                return False
            if not progress:
                return True
            if conn.pending and not self.coalesce_writes:
                await self._flush(conn)

    async def _flush(self, conn):
        """Flush queued responses as one write, recording batch stats."""
        made = conn.pending
        if made:
            conn.pending = 0
            self.stats["batches"] += 1
            if made > self.stats["max_batch"]:
                self.stats["max_batch"] = made
        try:
            await conn.flush()
        except (ConnectionResetError, BrokenPipeError):
            pass  # the read loop notices the dead peer on its own

    def _schedule_flush(self, conn):
        if conn.flush_task is None or conn.flush_task.done():
            conn.flush_task = self._loop.create_task(self._flush_soon(conn))

    async def _flush_soon(self, conn):
        # yield once so every dispatch completing in the same ready
        # batch lands in a single write
        await asyncio.sleep(0)
        await self._flush(conn)

    def _frame_fault(self) -> bool:
        """True when an injected ``service.frame`` fault fires — the
        mid-frame client disconnect."""
        if self.fault_injector is not None:
            try:
                self.fault_injector.fire("service.frame")
            except FaultInjected:
                self.stats["injected_disconnects"] += 1
                return True
        return False

    def _too_long_text(self, conn):
        self.stats["frames"] += 1
        self.stats["frames_too_long"] += 1
        self._queue_text(
            conn,
            "ERR FRAME_TOO_LONG line exceeds %d bytes" % self.max_frame,
        )

    async def _next_text(self, conn, session, buffer, eof):
        """Consume at most one text line; (progress, alive)."""
        newline = buffer.find(b"\n")
        if session.discarding:
            # inside an oversized line that was already answered: drop
            # bytes until the newline restores framing
            if newline < 0:
                del buffer[:]
                return False, True
            del buffer[: newline + 1]
            session.discarding = False
            return True, True
        if newline < 0:
            if len(buffer) > self.max_frame:
                self._too_long_text(conn)
                session.discarding = True
                del buffer[:]
                return True, True
            if eof and buffer:
                # readline() surfaced an unterminated tail at EOF as a
                # final frame; keep that behavior
                line = bytes(buffer)
                del buffer[:]
                return await self._text_frame(conn, session, line)
            return False, True
        line = bytes(buffer[:newline])
        del buffer[: newline + 1]
        if len(line) > self.max_frame:
            self._too_long_text(conn)
            return True, True
        return await self._text_frame(conn, session, line)

    async def _text_frame(self, conn, session, line: bytes):
        self.stats["frames"] += 1
        if self._frame_fault():
            return False, False
        response = await self._dispatch(
            conn, session, line.decode("utf-8", "replace").strip()
        )
        self._queue_text(conn, response)
        return True, True

    def _queue_text(self, conn, response: str):
        if response.startswith("ERR"):
            self.stats["errors"] += 1
        conn.out += (response + "\n").encode("utf-8")
        conn.pending += 1

    def _next_binary(self, conn, session, buffer):
        """Consume at most one binary frame; (progress, alive).

        Decode-time outcomes (oversized frame, corrupt header, bad
        body) are answered inline; a well-formed request spawns an
        ordered dispatch task instead of being awaited here, so the
        read loop keeps decoding while earlier frames execute."""
        if session.skip:
            drop = min(session.skip, len(buffer))
            del buffer[:drop]
            session.skip -= drop
            if session.skip:
                return False, True
        if len(buffer) < wire.HEADER_SIZE:
            return False, True
        length, opcode, corr = wire.HEADER.unpack_from(buffer, 0)
        if length < wire.HEADER_SIZE - 4:
            # a corrupt header: no way to resync, drop the connection
            return False, False
        if length > self.max_frame:
            self.stats["frames"] += 1
            self.stats["frames_too_long"] += 1
            self._queue_binary(
                conn,
                wire.encode_response(
                    wire.RESP_ERR,
                    corr,
                    (
                        wire.ERR_CODES["FRAME_TOO_LONG"],
                        "FRAME_TOO_LONG frame exceeds %d bytes"
                        % self.max_frame,
                    ),
                ),
            )
            del buffer[: wire.HEADER_SIZE]
            session.skip = length - (wire.HEADER_SIZE - 4)
            return True, True
        end = 4 + length
        if len(buffer) < end:
            return False, True
        self.stats["frames"] += 1
        if self._frame_fault():
            return False, False
        try:
            fields = wire.decode_request_fields(
                opcode, buffer, wire.HEADER_SIZE, end
            )
        except (wire.WireError, UnicodeDecodeError):
            del buffer[:end]
            self._queue_binary(
                conn,
                wire.frame_for_response(
                    corr, "ERR UNKNOWN-OPCODE 0x%02x" % opcode
                )
                if opcode not in wire.REQUEST_OPCODES
                else wire.frame_for_response(
                    corr, "ERR BAD-FRAME opcode 0x%02x body" % opcode
                ),
            )
            return True, True
        del buffer[:end]
        task = self._loop.create_task(
            self._binary_frame(conn, session, opcode, corr, fields)
        )
        session.tasks.add(task)
        task.add_done_callback(session.tasks.discard)
        return True, True

    async def _binary_frame(self, conn, session, opcode, corr, fields):
        """One pipelined binary dispatch, begun in arrival order.

        The session's order lock is held from frame start until the
        dispatch completes — or first waits (released in
        ``_await_grant`` and before the modelled shard-service sleep in
        ``_run_steps``).  Transaction state therefore mutates in
        arrival order, but a waiting frame no longer blocks the frames
        queued behind it: responses are matched by correlation id, not
        position.
        """
        await session.acquire_order()
        try:
            frame = await self._dispatch_binary(
                conn, session, opcode, corr, fields
            )
        except asyncio.CancelledError:
            raise
        except Exception:
            # the serial path tore the connection down on an unexpected
            # dispatch error; match that rather than leaving the client
            # waiting on this correlation id forever
            conn.writer.close()
            raise
        finally:
            session.release_order()
        self._queue_binary(conn, frame)
        if not self.coalesce_writes:
            await self._flush(conn)

    def _queue_binary(self, conn, frame: bytes):
        if frame[4] == wire.RESP_ERR:
            self.stats["errors"] += 1
        conn.out += frame
        conn.pending += 1
        if self.coalesce_writes:
            self._schedule_flush(conn)

    # -- dispatch -------------------------------------------------------------

    async def _dispatch(self, conn, session: _Session, frame: str) -> str:
        if not frame:
            return "ERR BAD-FRAME empty"
        tokens = frame.split()
        verb = tokens[0].upper()
        if verb == "STATS":
            return self._stats_frame()
        if verb == "MODES":
            return self._modes_frame()
        if verb == "HELLO":
            if len(tokens) != 2 or tokens[1].upper() not in (
                "TEXT",
                "BINARY",
            ):
                return "ERR BAD-FRAME HELLO takes TEXT or BINARY"
            if tokens[1].upper() == "BINARY":
                if not session.binary:
                    self.stats["binary_sessions"] += 1
                session.binary = True
                return "OK HELLO BINARY"
            session.binary = False
            return "OK HELLO TEXT"
        if verb == "START":
            if len(tokens) != 2:
                return "ERR BAD-FRAME START takes one argument"
            return self._start(session, tokens[1])
        if verb == "END":
            if len(tokens) != 2:
                return "ERR BAD-FRAME END takes one argument"
            return await self._end(session, tokens[1])
        if verb == "UNLOCK":
            if len(tokens) != 3:
                return "ERR BAD-FRAME UNLOCK takes two arguments"
            return await self._unlock(conn, session, tokens[1], tokens[2])
        if verb in _PLAN_VERBS and self._accepts_mode(_PLAN_VERBS[verb]):
            if len(tokens) not in (3, 4) or (
                len(tokens) == 4 and tokens[3].upper() != "NOWAIT"
            ):
                return "ERR BAD-FRAME %s takes <txn> <path> [NOWAIT]" % verb
            return await self._lock(
                conn,
                session,
                verb,
                tokens[1],
                tokens[2],
                nowait=len(tokens) == 4,
            )
        if verb == "ACQUIRE_MANY":
            if len(tokens) not in (3, 4) or (
                len(tokens) == 4 and tokens[3].upper() != "NOWAIT"
            ):
                return (
                    "ERR BAD-FRAME ACQUIRE_MANY takes <txn> "
                    "<path>:<mode>[,...] [NOWAIT]"
                )
            return await self._acquire_many(
                conn, session, tokens[1], tokens[2], nowait=len(tokens) == 4
            )
        return "ERR UNKNOWN-VERB %s" % tokens[0]

    async def _dispatch_binary(
        self, conn, session: _Session, opcode: int, corr: int, fields: tuple
    ) -> bytes:
        """One binary request, one binary response frame.

        Lock/unlock/end responses render through the same text handlers
        the line protocol uses and are re-framed, so the two protocols
        stay byte-equivalent by construction.
        """
        if opcode == wire.OP_START:
            return wire.frame_for_response(
                corr, self._start(session, fields[0])
            )
        if opcode == wire.OP_END:
            return wire.frame_for_response(
                corr, await self._end(session, fields[0])
            )
        if opcode == wire.OP_STATS:
            return wire.frame_for_response(corr, self._stats_frame())
        if opcode == wire.OP_RESOURCES:
            entries = tuple(
                sorted(
                    (rid, "/".join(str(p) for p in resource))
                    for rid, resource in self._rid_resources.items()
                )
            )
            return wire.encode_response(wire.RESP_RESOURCES, corr, (entries,))
        if opcode == wire.OP_INTERN:
            resource, err = self._parse_resource(fields[0])
            if err is not None:
                return wire.frame_for_response(corr, err)
            rid = self._wire_ids.intern(resource)
            self._rid_resources[rid] = resource
            return wire.encode_response(wire.RESP_INTERNED, corr, (rid,))
        if opcode == wire.OP_UNLOCK:
            rid, name = fields
            if self._live_txn(session, name) is None:
                return wire.frame_for_response(corr, "ERR NOTXN %s" % name)
            resource = self._rid_resources.get(rid)
            if resource is None:
                return wire.frame_for_response(
                    corr, "ERR UNKNOWN-RESOURCE rid=%d" % rid
                )
            return wire.frame_for_response(
                corr,
                await self._unlock_resource(
                    session,
                    name,
                    resource,
                    "/".join(str(p) for p in resource),
                ),
            )
        if opcode == wire.OP_MODES:
            return wire.frame_for_response(corr, self._modes_frame())
        if opcode == wire.OP_LOCK:
            mode_code, flags, rid, name = fields
            if self._live_txn(session, name) is None:
                return wire.frame_for_response(corr, "ERR NOTXN %s" % name)
            if mode_code >= N_MODES or not self._accepts_mode(
                MODES_BY_CODE[mode_code]
            ):
                # a semantic code against a classic stack answers exactly
                # as any out-of-range code always has
                return wire.frame_for_response(
                    corr, "ERR BAD-MODE code=%d" % mode_code
                )
            resource = self._rid_resources.get(rid)
            if resource is None:
                return wire.frame_for_response(
                    corr, "ERR UNKNOWN-RESOURCE rid=%d" % rid
                )
            return wire.frame_for_response(
                corr,
                await self._lock_resource(
                    conn,
                    session,
                    name,
                    resource,
                    "/".join(str(p) for p in resource),
                    MODES_BY_CODE[mode_code],
                    nowait=bool(flags & wire.FLAG_NOWAIT),
                ),
            )
        if opcode == wire.OP_ACQUIRE_MANY:
            flags, step_codes, name = fields
            txn = self._live_txn(session, name)
            if txn is None:
                return wire.frame_for_response(corr, "ERR NOTXN %s" % name)
            steps: List[Tuple[tuple, LockMode]] = []
            spec_parts: List[str] = []
            for rid, mode_code in step_codes:
                if mode_code >= N_MODES or not self._accepts_mode(
                    MODES_BY_CODE[mode_code]
                ):
                    return wire.frame_for_response(
                        corr, "ERR BAD-MODE code=%d" % mode_code
                    )
                resource = self._rid_resources.get(rid)
                if resource is None:
                    return wire.frame_for_response(
                        corr, "ERR UNKNOWN-RESOURCE rid=%d" % rid
                    )
                mode = MODES_BY_CODE[mode_code]
                steps.append((resource, mode))
                spec_parts.append(
                    "%s:%s" % ("/".join(str(p) for p in resource), mode.value)
                )
            return wire.frame_for_response(
                corr,
                await self._run_steps(
                    conn,
                    session,
                    txn,
                    name,
                    ",".join(spec_parts),
                    steps,
                    nowait=bool(flags & wire.FLAG_NOWAIT),
                ),
            )
        return wire.frame_for_response(
            corr, "ERR UNKNOWN-OPCODE 0x%02x" % opcode
        )

    def _start(self, session: _Session, name: str) -> str:
        txn = session.txns.get(name)
        if txn is not None and txn.state == TxnState.ACTIVE:
            return "ERR TXN-ACTIVE %s" % name
        session.txns[name] = self.stack.txns.begin(name=name)
        return "OK STARTED %s" % name

    def _live_txn(self, session: _Session, name: str):
        txn = session.txns.get(name)
        if txn is None or txn.state != TxnState.ACTIVE:
            session.txns.pop(name, None)
            return None
        return txn

    async def _end(self, session: _Session, name: str) -> str:
        txn = self._live_txn(session, name)
        if txn is None:
            return "ERR NOTXN %s" % name
        # a pipelined END can arrive while this transaction's own lock
        # frames are still in flight (parked, or sleeping out modelled
        # shard latency); committing underneath them would yank the
        # transaction out of the lock manager mid-plan.  Wait for the
        # transaction to quiesce — and release the frame-order lock
        # first, else this END would head-of-line-block every later
        # frame (the next transaction's whole pipeline) while it waits
        # on its own stragglers.
        if session.inflight.get(name):
            session.release_order()
            await session.quiesce(name)
        # commit mutates synchronously (no awaits), so it needs no shard
        # mutex: nothing can observe a half-released transaction.  Not
        # taking the all-shards barrier here keeps EOT off the admission
        # path — it was the scaling bottleneck when every transaction's
        # END drained all N shard mutexes.
        try:
            await self._call(self.stack.txns.commit, txn)
        except TransactionError:
            # e.g. the detector picked this transaction as victim after
            # the liveness check above
            if session.txns.get(name) is txn:
                session.txns.pop(name, None)
            return "ERR NOTXN %s" % name
        # drop only our own entry: once the order lock is released a
        # pipelined START may already have rebound the name
        if session.txns.get(name) is txn:
            session.txns.pop(name, None)
        return "OK ENDED %s" % name

    async def _unlock(
        self, conn, session: _Session, name: str, path: str
    ) -> str:
        txn = self._live_txn(session, name)
        if txn is None:
            return "ERR NOTXN %s" % name
        resource, err = self._parse_resource(path)
        if err is not None:
            return err
        return await self._unlock_resource(session, name, resource, path)

    async def _unlock_resource(
        self, session: _Session, name: str, resource: tuple, path: str
    ) -> str:
        txn = self._live_txn(session, name)
        if txn is None:
            return "ERR NOTXN %s" % name
        session.begin_frame(name)
        try:
            shard = self.manager.shard_of(resource)
            async with self._shard_locks[shard]:
                try:
                    await self._call(self.manager.release, txn, resource)
                except LockError:
                    return "ERR NOT-HELD %s %s" % (name, path)
            return "OK RELEASED %s %s" % (name, path)
        finally:
            session.end_frame(name)

    async def _lock(
        self,
        conn,
        session: _Session,
        verb: str,
        name: str,
        path: str,
        nowait: bool,
    ) -> str:
        txn = self._live_txn(session, name)
        if txn is None:
            return "ERR NOTXN %s" % name
        resource, err = self._parse_resource(path)
        if err is not None:
            return err
        return await self._lock_resource(
            conn, session, name, resource, path, _PLAN_VERBS[verb], nowait
        )

    async def _lock_resource(
        self,
        conn,
        session: _Session,
        name: str,
        resource: tuple,
        path: str,
        mode: LockMode,
        nowait: bool,
    ) -> str:
        txn = self._live_txn(session, name)
        if txn is None:
            return "ERR NOTXN %s" % name
        if mode.is_intention:
            # the paper's intention chain: IS/IX on every ancestor,
            # root first, then the node itself
            steps = [(anc, mode) for anc in ancestors(resource)]
            steps.append((resource, mode))
        else:
            try:
                plan = self.stack.protocol.plan_request(txn, resource, mode)
            except (AuthorizationError, ProtocolError) as exc:
                return "ERR DENIED %s %s" % (name, exc)
            steps = [(step.resource, step.mode) for step in plan]
        return await self._run_steps(
            conn, session, txn, name, path, steps, nowait
        )

    async def _acquire_many(
        self, conn, session: _Session, name: str, spec: str, nowait: bool
    ) -> str:
        txn = self._live_txn(session, name)
        if txn is None:
            return "ERR NOTXN %s" % name
        steps: List[Tuple[tuple, LockMode]] = []
        for item in spec.split(","):
            path, sep, mode_name = item.rpartition(":")
            if not sep:
                return "ERR BAD-FRAME missing :mode in %s" % item
            try:
                mode = LockMode(mode_name.upper())
            except ValueError:
                return "ERR BAD-MODE %s" % mode_name
            if not self._accepts_mode(mode):
                # a semantic mode name against a classic stack answers
                # exactly as the unknown-name path always has
                return "ERR BAD-MODE %s" % mode_name
            resource, err = self._parse_resource(path)
            if err is not None:
                return err
            steps.append((resource, mode))
        return await self._run_steps(
            conn, session, txn, name, spec, steps, nowait
        )

    # -- plan execution under shard mutexes -----------------------------------

    async def _run_steps(
        self, conn, session: _Session, txn, name: str, what: str, steps, nowait
    ) -> str:
        """Acquire an ordered plan, one shard run at a time.

        Holds exactly one shard mutex at any moment; a WAITING tail
        releases every mutex and parks on a future resolved by
        ``on_wake`` (grant), the detector (deadlock victim) or the
        timeout path (cancel + ERR TIMEOUT, earlier prefix stays held —
        the client chooses between retry and END).
        """
        session.begin_frame(name)
        try:
            return await self._run_steps_inner(
                conn, session, txn, name, what, steps, nowait
            )
        finally:
            session.end_frame(name)

    async def _run_steps_inner(
        self, conn, session: _Session, txn, name: str, what: str, steps, nowait
    ) -> str:
        submitted = 0
        run: List[Tuple[tuple, LockMode]] = []
        run_shard = -1
        plan = list(steps)
        plan.append((None, None))  # sentinel flushes the last run
        for resource, mode in plan:
            shard = (
                self.manager.shard_of(resource) if resource is not None else -2
            )
            if shard != run_shard and run:
                fault = False
                granted: List[LockRequest] = []
                async with self._shard_locks[run_shard]:
                    try:
                        granted = await self._call(
                            self.manager.acquire_many,
                            txn,
                            run,
                            long=txn.long,
                            wait=not nowait,
                        )
                    except LockConflictError as exc:
                        return "ERR CONFLICT %s %s" % (
                            name,
                            "/".join(str(p) for p in exc.resource),
                        )
                    except LockTimeoutError:
                        # an injected mid-batch timeout: the prefix stays
                        # granted, the client decides between retry / END
                        self.stats["timeouts"] += 1
                        return "ERR TIMEOUT %s %s" % (name, what)
                    except FaultInjected:
                        fault = True  # abort outside this shard's mutex
                    else:
                        submitted += len(granted)
                        if self.shard_service_time and granted:
                            # the modelled shard latency is a wait, not
                            # event-loop work: release the frame-order
                            # lock so later pipelined frames overlap it
                            session.release_order()
                            await asyncio.sleep(
                                self.shard_service_time * len(granted)
                            )
                if fault:
                    # an injected fault (error or abort action) during
                    # the batch: abort the transaction — the universal
                    # cleaner — and report; the session entry goes too
                    await self._abort_txn(txn)
                    session.txns.pop(name, None)
                    return "ERR FAULT %s %s" % (name, what)
                if granted and not granted[-1].granted:
                    outcome = await self._await_grant(
                        conn, session, name, granted[-1]
                    )
                    if outcome is not None:
                        return outcome
                run = []
            if resource is None:
                break
            run_shard = shard
            run.append((resource, mode))
        return "OK GRANTED %s %s steps=%d" % (name, what, submitted)

    async def _await_grant(
        self, conn, session: _Session, name: str, request
    ) -> Optional[str]:
        """Park on ``request``; None when granted, an ERR frame otherwise."""
        future = asyncio.get_running_loop().create_future()
        self._futures[request] = future
        if self._nudge is not None:
            self._nudge.set()  # a new wait edge: run the detector early
        try:
            # this frame is parking: later pipelined frames may begin
            session.release_order()
            # a pipelined batch must not sit on completed answers while
            # this frame waits: flush what is already queued, then park
            await self._flush(conn)
            await asyncio.wait_for(future, self.lock_timeout)
            return None
        except DeadlockError:
            # the detector chose this transaction as victim and already
            # aborted it: every lock is gone, the session entry follows
            session.txns.pop(name, None)
            return "ERR DEADLOCK %s" % name
        except asyncio.TimeoutError:
            shard = self.manager.shard_of(request.resource)
            async with self._shard_locks[shard]:
                if request.status == RequestStatus.WAITING:
                    await self._call(self.manager.cancel, request)
            if request.granted:
                return None  # granted in the race window: keep it
            self.stats["timeouts"] += 1
            return "ERR TIMEOUT %s %s" % (
                name,
                "/".join(str(p) for p in request.resource),
            )
        finally:
            self._futures.pop(request, None)

    # -- cross-shard deadlock detection ---------------------------------------

    async def _detector_loop(self):
        assert self._nudge is not None
        while True:
            try:
                await asyncio.wait_for(
                    self._nudge.wait(), self.detector_interval
                )
            except asyncio.TimeoutError:
                pass
            self._nudge.clear()
            await self._detector_pass()

    async def _detector_pass(self):
        if self.fault_injector is not None:
            try:
                self.fault_injector.fire("service.detector")
            except FaultInjected:
                # an injected detector delay: skip this snapshot; the
                # next tick (or nudge) re-runs detection — deadlocks
                # are found late, never lost
                self.stats["detector_delays"] += 1
                return
        await self._all_shards_acquire()
        try:
            while True:
                cycle = await self._call(self.manager.detect_deadlock)
                if cycle is None:
                    return
                victim = self.manager.detector.pick_victim(cycle)
                self.stats["deadlock_victims"] += 1
                self._fail_victim_futures(victim, cycle)
                for request in self.manager.table.waiting_requests_of(victim):
                    await self._call(self.manager.cancel, request)
                # bounded retry: an injected fault can raise during the
                # abort; TransactionManager.abort is re-entrant
                for attempt in range(3):
                    try:
                        await self._call(self.stack.txns.abort, victim)
                        break
                    except Exception:
                        if attempt == 2:
                            raise
        finally:
            self._all_shards_release()

    def _fail_victim_futures(self, victim, cycle):
        names = tuple(getattr(txn, "name", repr(txn)) for txn in cycle)
        for request, future in list(self._futures.items()):
            if request.txn is victim and not future.done():
                future.set_exception(
                    DeadlockError(
                        "transaction %r chosen as deadlock victim"
                        % (getattr(victim, "name", victim),),
                        cycle=names,
                    )
                )

    async def _abort_txn(self, txn):
        # like commit: a synchronous mutation, no shard mutex needed
        for request in self.manager.table.waiting_requests_of(txn):
            await self._call(self.manager.cancel, request)
        for attempt in range(3):
            try:
                await self._call(self.stack.txns.abort, txn)
                break
            except Exception:
                if attempt == 2:
                    raise

    async def _all_shards_acquire(self):
        # ascending shard order: the one global mutex order, so two
        # multi-shard operations can never deadlock on the mutexes
        for mutex in self._shard_locks:
            await mutex.acquire()

    def _all_shards_release(self):
        for mutex in reversed(self._shard_locks):
            mutex.release()

    # -- resources and stats --------------------------------------------------

    def _parse_resource(self, path: str):
        parts = tuple(path.split("/"))
        if not parts or any(not p for p in parts):
            return None, "ERR UNKNOWN-RESOURCE %s" % path
        database = self.stack.database
        if parts[0] != database.name:
            return None, "ERR UNKNOWN-RESOURCE %s" % path
        if len(parts) == 1:
            return parts, None
        relations = database.relations()
        if parts[1] not in {rel.segment for rel in relations}:
            return None, "ERR UNKNOWN-RESOURCE %s" % path
        if len(parts) == 2:
            return parts, None
        matching = [
            rel
            for rel in relations
            if rel.name == parts[2] and rel.segment == parts[1]
        ]
        if not matching:
            return None, "ERR UNKNOWN-RESOURCE %s" % path
        if len(parts) == 3:
            return parts, None
        # object level: the key as it appears in resource tuples (str);
        # deeper component parts ride on a valid object prefix
        if parts[3] not in {str(obj.key) for obj in matching[0]}:
            return None, "ERR UNKNOWN-RESOURCE %s" % path
        return parts, None

    def _stats_frame(self) -> str:
        payload = dict(self.manager.metrics())
        payload.update(self.stats)
        payload["lock_count"] = self.manager.lock_count()
        return "OK STATS %s" % json.dumps(
            payload, sort_keys=True, separators=(",", ":")
        )
