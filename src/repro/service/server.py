"""The asyncio lock server: a line protocol over a sharded lock stack.

One :class:`LockServer` owns a :class:`~repro.LockStack` whose manager is
a :class:`~repro.service.sharded.ShardedLockManager`.  Clients speak a
line protocol (one request line, one response line, UTF-8):

    START <txn>
    SLOCK <txn> <path> [NOWAIT]        S on the node, full protocol plan
    XLOCK <txn> <path> [NOWAIT]        X on the node, full protocol plan
    ISLOCK <txn> <path> [NOWAIT]       IS on the node + IS ancestors
    IXLOCK <txn> <path> [NOWAIT]       IX on the node + IX ancestors
    ACQUIRE_MANY <txn> <path>:<MODE>[,<path>:<MODE>...] [NOWAIT]
    UNLOCK <txn> <path>
    END <txn>
    STATS

``<path>`` is a slash-joined resource tuple (``db1/seg1/cells/c1``).
Responses are ``OK ...`` or ``ERR <CODE> ...`` — see docs/SERVICE.md for
the full frame grammar and tests/service/test_protocol_conformance.py
for golden transcripts.

Concurrency model: the event loop is single-threaded and every lock-table
mutation is synchronous, so state consistency never depends on the shard
mutexes — they model per-partition *admission*.  A lock request is cut
into per-shard runs (root-to-leaf order) and each run holds only its own
shard's ``asyncio.Lock`` while the shard table works, plus an optional
``shard_service_time`` sleep per submitted request modelling per-shard
storage latency; requests routed to different shards overlap, requests
to the same shard serialize.  EOT release is synchronous and charged to
no shard, keeping commit off the admission path.  A task never holds one
shard mutex while waiting for another (runs are sequential), and the one
multi-shard operation — the deadlock detector's stop-the-world snapshot
— takes mutexes in ascending shard order, the single global order, so
mutex deadlock is impossible by construction.

WAITING requests park on an :class:`asyncio.Future`; the sharded
manager's ``on_wake`` callback resolves the future when a release or
cancellation grants the queued request.  A cross-shard deadlock detector
task snapshots the union waits-for graph (all shard mutexes held) on an
interval, nudged early whenever a request starts waiting; victims are
aborted through the transaction manager with the bounded-retry pattern
of the fault harness.

Fault injection: the server fires ``service.frame`` before parsing every
request line (an injected error drops the connection — the mid-frame
client disconnect) and ``service.detector`` at the top of every detector
pass (an injected error skips the pass — a detector delay); both are
registered in :data:`repro.faults.plan.INJECTION_POINTS`.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, List, Optional, Tuple

from repro.errors import (
    AuthorizationError,
    DeadlockError,
    FaultInjected,
    LockConflictError,
    LockError,
    LockTimeoutError,
    ProtocolError,
    TransactionError,
)
from repro.graphs.units import ancestors
from repro.locking.lock_table import LockRequest, RequestStatus
from repro.locking.modes import IS, IX, S, X, LockMode
from repro.service.sharded import ShardedLockManager
from repro.txn.transaction import TxnState

#: Verbs that take <txn> <path> and run a lock plan.
_PLAN_VERBS = {"SLOCK": S, "XLOCK": X, "ISLOCK": IS, "IXLOCK": IX}


def make_service_stack(workload: str = "cells", shards: int = 4, **flags):
    """A fresh served stack over one of the standard databases.

    ``workload`` picks the database: ``cells`` (the paper's figure-7
    robotics schema) or ``partlib`` (the part library of the check
    workloads).  ``shards`` goes to the ShardedLockManager; remaining
    flags are protocol ablation flags.
    """
    import repro

    if workload == "partlib":
        from repro.check.workloads import build_check_partlib

        database, catalog = build_check_partlib()
    elif workload == "cells":
        from repro.workloads import build_cells_database

        database, catalog = build_cells_database(figure7=True)
    else:
        raise ValueError("unknown service workload %r" % (workload,))
    return repro.make_stack(database, catalog, shards=shards, **flags)


class _Session:
    """Per-connection state: this client's named transactions."""

    __slots__ = ("txns",)

    def __init__(self):
        self.txns: Dict[str, object] = {}


class LockServer:
    """Serve a sharded lock stack over the line protocol."""

    def __init__(
        self,
        stack,
        host: str = "127.0.0.1",
        port: int = 0,
        shard_service_time: float = 0.0,
        detector_interval: float = 0.05,
        lock_timeout: float = 5.0,
    ):
        manager = stack.manager
        if not isinstance(manager, ShardedLockManager):
            raise TypeError("LockServer requires a ShardedLockManager stack")
        self.stack = stack
        self.manager: ShardedLockManager = manager
        self.host = host
        self.port = port
        #: per-submitted-request service latency charged inside the
        #: owning shard's mutex — the knob the shard-scaling benchmark
        #: turns (0.0 for functional tests: admission only, no latency)
        self.shard_service_time = shard_service_time
        self.detector_interval = detector_interval
        self.lock_timeout = lock_timeout
        #: optional :class:`repro.faults.FaultInjector` for the
        #: ``service.frame`` / ``service.detector`` points
        self.fault_injector = None
        self.stats: Dict[str, int] = {
            "frames": 0,
            "errors": 0,
            "sessions": 0,
            "deadlock_victims": 0,
            "timeouts": 0,
            "injected_disconnects": 0,
            "detector_delays": 0,
        }
        self._shard_locks: List[asyncio.Lock] = []
        self._futures: Dict[LockRequest, asyncio.Future] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._detector_task: Optional[asyncio.Task] = None
        self._nudge: Optional[asyncio.Event] = None
        manager.on_wake = self._on_wake

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind, start serving and start the detector task."""
        self._shard_locks = [
            asyncio.Lock() for _ in range(self.manager.n_shards)
        ]
        self._nudge = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._detector_task = asyncio.create_task(self._detector_loop())
        return self.host, self.port

    async def stop(self):
        if self._detector_task is not None:
            self._detector_task.cancel()
            try:
                await self._detector_task
            except asyncio.CancelledError:
                pass
            self._detector_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self):
        await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # -- wake plumbing --------------------------------------------------------

    def _on_wake(self, woken: List[LockRequest]):
        for request in woken:
            future = self._futures.get(request)
            if future is not None and not future.done():
                future.set_result(True)

    # -- connection handling --------------------------------------------------

    async def _handle_client(self, reader, writer):
        session = _Session()
        self.stats["sessions"] += 1
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                self.stats["frames"] += 1
                if self.fault_injector is not None:
                    try:
                        self.fault_injector.fire("service.frame")
                    except FaultInjected:
                        # the mid-frame client disconnect: drop the
                        # connection without a reply; cleanup below
                        # aborts the session's live transactions
                        self.stats["injected_disconnects"] += 1
                        break
                response = await self._dispatch(
                    session, line.decode("utf-8", "replace").strip()
                )
                if response.startswith("ERR"):
                    self.stats["errors"] += 1
                writer.write((response + "\n").encode("utf-8"))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            for txn in list(session.txns.values()):
                if txn.state == TxnState.ACTIVE:
                    await self._abort_txn(txn)
            session.txns.clear()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    # -- dispatch -------------------------------------------------------------

    async def _dispatch(self, session: _Session, frame: str) -> str:
        if not frame:
            return "ERR BAD-FRAME empty"
        tokens = frame.split()
        verb = tokens[0].upper()
        if verb == "STATS":
            return self._stats_frame()
        if verb == "START":
            if len(tokens) != 2:
                return "ERR BAD-FRAME START takes one argument"
            return self._start(session, tokens[1])
        if verb == "END":
            if len(tokens) != 2:
                return "ERR BAD-FRAME END takes one argument"
            return await self._end(session, tokens[1])
        if verb == "UNLOCK":
            if len(tokens) != 3:
                return "ERR BAD-FRAME UNLOCK takes two arguments"
            return await self._unlock(session, tokens[1], tokens[2])
        if verb in _PLAN_VERBS:
            if len(tokens) not in (3, 4) or (
                len(tokens) == 4 and tokens[3].upper() != "NOWAIT"
            ):
                return "ERR BAD-FRAME %s takes <txn> <path> [NOWAIT]" % verb
            return await self._lock(
                session, verb, tokens[1], tokens[2], nowait=len(tokens) == 4
            )
        if verb == "ACQUIRE_MANY":
            if len(tokens) not in (3, 4) or (
                len(tokens) == 4 and tokens[3].upper() != "NOWAIT"
            ):
                return (
                    "ERR BAD-FRAME ACQUIRE_MANY takes <txn> "
                    "<path>:<mode>[,...] [NOWAIT]"
                )
            return await self._acquire_many(
                session, tokens[1], tokens[2], nowait=len(tokens) == 4
            )
        return "ERR UNKNOWN-VERB %s" % tokens[0]

    def _start(self, session: _Session, name: str) -> str:
        txn = session.txns.get(name)
        if txn is not None and txn.state == TxnState.ACTIVE:
            return "ERR TXN-ACTIVE %s" % name
        session.txns[name] = self.stack.txns.begin(name=name)
        return "OK STARTED %s" % name

    def _live_txn(self, session: _Session, name: str):
        txn = session.txns.get(name)
        if txn is None or txn.state != TxnState.ACTIVE:
            session.txns.pop(name, None)
            return None
        return txn

    async def _end(self, session: _Session, name: str) -> str:
        txn = self._live_txn(session, name)
        if txn is None:
            return "ERR NOTXN %s" % name
        # commit mutates synchronously (no awaits), so it needs no shard
        # mutex: nothing can observe a half-released transaction.  Not
        # taking the all-shards barrier here keeps EOT off the admission
        # path — it was the scaling bottleneck when every transaction's
        # END drained all N shard mutexes.
        try:
            self.stack.txns.commit(txn)
        except TransactionError:
            # e.g. the detector picked this transaction as victim after
            # the liveness check above
            session.txns.pop(name, None)
            return "ERR NOTXN %s" % name
        session.txns.pop(name, None)
        return "OK ENDED %s" % name

    async def _unlock(self, session: _Session, name: str, path: str) -> str:
        txn = self._live_txn(session, name)
        if txn is None:
            return "ERR NOTXN %s" % name
        resource, err = self._parse_resource(path)
        if err is not None:
            return err
        shard = self.manager.shard_of(resource)
        async with self._shard_locks[shard]:
            try:
                self.manager.release(txn, resource)
            except LockError:
                return "ERR NOT-HELD %s %s" % (name, path)
        return "OK RELEASED %s %s" % (name, path)

    async def _lock(
        self, session: _Session, verb: str, name: str, path: str, nowait: bool
    ) -> str:
        txn = self._live_txn(session, name)
        if txn is None:
            return "ERR NOTXN %s" % name
        resource, err = self._parse_resource(path)
        if err is not None:
            return err
        mode = _PLAN_VERBS[verb]
        if mode.is_intention:
            # the paper's intention chain: IS/IX on every ancestor,
            # root first, then the node itself
            steps = [(anc, mode) for anc in ancestors(resource)]
            steps.append((resource, mode))
        else:
            try:
                plan = self.stack.protocol.plan_request(txn, resource, mode)
            except (AuthorizationError, ProtocolError) as exc:
                return "ERR DENIED %s %s" % (name, exc)
            steps = [(step.resource, step.mode) for step in plan]
        return await self._run_steps(session, txn, name, path, steps, nowait)

    async def _acquire_many(
        self, session: _Session, name: str, spec: str, nowait: bool
    ) -> str:
        txn = self._live_txn(session, name)
        if txn is None:
            return "ERR NOTXN %s" % name
        steps: List[Tuple[tuple, LockMode]] = []
        for item in spec.split(","):
            path, sep, mode_name = item.rpartition(":")
            if not sep:
                return "ERR BAD-FRAME missing :mode in %s" % item
            try:
                mode = LockMode(mode_name.upper())
            except ValueError:
                return "ERR BAD-MODE %s" % mode_name
            resource, err = self._parse_resource(path)
            if err is not None:
                return err
            steps.append((resource, mode))
        return await self._run_steps(session, txn, name, spec, steps, nowait)

    # -- plan execution under shard mutexes -----------------------------------

    async def _run_steps(
        self, session: _Session, txn, name: str, what: str, steps, nowait: bool
    ) -> str:
        """Acquire an ordered plan, one shard run at a time.

        Holds exactly one shard mutex at any moment; a WAITING tail
        releases every mutex and parks on a future resolved by
        ``on_wake`` (grant), the detector (deadlock victim) or the
        timeout path (cancel + ERR TIMEOUT, earlier prefix stays held —
        the client chooses between retry and END).
        """
        submitted = 0
        run: List[Tuple[tuple, LockMode]] = []
        run_shard = -1
        plan = list(steps)
        plan.append((None, None))  # sentinel flushes the last run
        for resource, mode in plan:
            shard = self.manager.shard_of(resource) if resource is not None else -2
            if shard != run_shard and run:
                fault = False
                granted: List[LockRequest] = []
                async with self._shard_locks[run_shard]:
                    try:
                        granted = self.manager.acquire_many(
                            txn, run, long=txn.long, wait=not nowait
                        )
                    except LockConflictError as exc:
                        return "ERR CONFLICT %s %s" % (
                            name,
                            "/".join(str(p) for p in exc.resource),
                        )
                    except LockTimeoutError:
                        # an injected mid-batch timeout: the prefix stays
                        # granted, the client decides between retry / END
                        self.stats["timeouts"] += 1
                        return "ERR TIMEOUT %s %s" % (name, what)
                    except FaultInjected:
                        fault = True  # abort outside this shard's mutex
                    else:
                        submitted += len(granted)
                        if self.shard_service_time and granted:
                            await asyncio.sleep(
                                self.shard_service_time * len(granted)
                            )
                if fault:
                    # an injected fault (error or abort action) during
                    # the batch: abort the transaction — the universal
                    # cleaner — and report; the session entry goes too
                    await self._abort_txn(txn)
                    session.txns.pop(name, None)
                    return "ERR FAULT %s %s" % (name, what)
                if granted and not granted[-1].granted:
                    outcome = await self._await_grant(session, name, granted[-1])
                    if outcome is not None:
                        return outcome
                run = []
            if resource is None:
                break
            run_shard = shard
            run.append((resource, mode))
        return "OK GRANTED %s %s steps=%d" % (name, what, submitted)

    async def _await_grant(
        self, session: _Session, name: str, request: LockRequest
    ) -> Optional[str]:
        """Park on ``request``; None when granted, an ERR frame otherwise."""
        future = asyncio.get_running_loop().create_future()
        self._futures[request] = future
        if self._nudge is not None:
            self._nudge.set()  # a new wait edge: run the detector early
        try:
            await asyncio.wait_for(future, self.lock_timeout)
            return None
        except DeadlockError:
            # the detector chose this transaction as victim and already
            # aborted it: every lock is gone, the session entry follows
            session.txns.pop(name, None)
            return "ERR DEADLOCK %s" % name
        except asyncio.TimeoutError:
            shard = self.manager.shard_of(request.resource)
            async with self._shard_locks[shard]:
                if request.status == RequestStatus.WAITING:
                    self.manager.cancel(request)
            if request.granted:
                return None  # granted in the race window: keep it
            self.stats["timeouts"] += 1
            return "ERR TIMEOUT %s %s" % (
                name,
                "/".join(str(p) for p in request.resource),
            )
        finally:
            self._futures.pop(request, None)

    # -- cross-shard deadlock detection ---------------------------------------

    async def _detector_loop(self):
        assert self._nudge is not None
        while True:
            try:
                await asyncio.wait_for(
                    self._nudge.wait(), self.detector_interval
                )
            except asyncio.TimeoutError:
                pass
            self._nudge.clear()
            await self._detector_pass()

    async def _detector_pass(self):
        if self.fault_injector is not None:
            try:
                self.fault_injector.fire("service.detector")
            except FaultInjected:
                # an injected detector delay: skip this snapshot; the
                # next tick (or nudge) re-runs detection — deadlocks
                # are found late, never lost
                self.stats["detector_delays"] += 1
                return
        await self._all_shards_acquire()
        try:
            while True:
                cycle = self.manager.detect_deadlock()
                if cycle is None:
                    return
                victim = self.manager.detector.pick_victim(cycle)
                self.stats["deadlock_victims"] += 1
                self._fail_victim_futures(victim, cycle)
                for request in self.manager.table.waiting_requests_of(victim):
                    self.manager.cancel(request)
                # bounded retry: an injected fault can raise during the
                # abort; TransactionManager.abort is re-entrant
                for attempt in range(3):
                    try:
                        self.stack.txns.abort(victim)
                        break
                    except Exception:
                        if attempt == 2:
                            raise
        finally:
            self._all_shards_release()

    def _fail_victim_futures(self, victim, cycle):
        names = tuple(getattr(txn, "name", repr(txn)) for txn in cycle)
        for request, future in list(self._futures.items()):
            if request.txn is victim and not future.done():
                future.set_exception(
                    DeadlockError(
                        "transaction %r chosen as deadlock victim"
                        % (getattr(victim, "name", victim),),
                        cycle=names,
                    )
                )

    async def _abort_txn(self, txn):
        # like commit: a synchronous mutation, no shard mutex needed
        for request in self.manager.table.waiting_requests_of(txn):
            self.manager.cancel(request)
        for attempt in range(3):
            try:
                self.stack.txns.abort(txn)
                break
            except Exception:
                if attempt == 2:
                    raise

    async def _all_shards_acquire(self):
        # ascending shard order: the one global mutex order, so two
        # multi-shard operations can never deadlock on the mutexes
        for mutex in self._shard_locks:
            await mutex.acquire()

    def _all_shards_release(self):
        for mutex in reversed(self._shard_locks):
            mutex.release()

    # -- resources and stats --------------------------------------------------

    def _parse_resource(self, path: str):
        parts = tuple(path.split("/"))
        if not parts or any(not p for p in parts):
            return None, "ERR UNKNOWN-RESOURCE %s" % path
        database = self.stack.database
        if parts[0] != database.name:
            return None, "ERR UNKNOWN-RESOURCE %s" % path
        if len(parts) == 1:
            return parts, None
        relations = database.relations()
        if parts[1] not in {rel.segment for rel in relations}:
            return None, "ERR UNKNOWN-RESOURCE %s" % path
        if len(parts) == 2:
            return parts, None
        matching = [
            rel
            for rel in relations
            if rel.name == parts[2] and rel.segment == parts[1]
        ]
        if not matching:
            return None, "ERR UNKNOWN-RESOURCE %s" % path
        if len(parts) == 3:
            return parts, None
        # object level: the key as it appears in resource tuples (str);
        # deeper component parts ride on a valid object prefix
        if parts[3] not in {str(obj.key) for obj in matching[0]}:
            return None, "ERR UNKNOWN-RESOURCE %s" % path
        return parts, None

    def _stats_frame(self) -> str:
        payload = dict(self.manager.metrics())
        payload.update(self.stats)
        payload["lock_count"] = self.manager.lock_count()
        return "OK STATS %s" % json.dumps(
            payload, sort_keys=True, separators=(",", ":")
        )
