"""Metrics collected by the concurrency simulator.

These quantify exactly the qualitative trade-offs of the paper:

* *degree of concurrency* — throughput, mean/percentile response time,
  time transactions spend blocked;
* *concurrency-control overhead* — explicit lock requests, conflict
  tests, peak lock-table size, reverse-scan work (naive baseline);
* *robustness* — deadlocks, aborts/restarts.
"""

from __future__ import annotations

from typing import Dict, List


def _percentile(sorted_values: List[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(fraction * (len(sorted_values) - 1)))
    return sorted_values[index]


class SimulationMetrics:
    """Mutable collector; ``report()`` freezes it into a dict."""

    def __init__(self):
        self.committed = 0
        self.aborted = 0
        self.restarts = 0
        #: aborted runs the retry policy gave up on (done without commit)
        self.abandoned = 0
        #: aborts caused by lock timeouts (includes injected timeouts)
        self.timeouts = 0
        #: faults delivered by an installed fault injector
        self.injected_faults = 0
        self.deadlocks = 0
        self.response_times: List[float] = []
        self.wait_times: List[float] = []
        self.makespan = 0.0
        self.locks_requested = 0
        self.conflict_tests = 0
        self.max_lock_entries = 0
        self.scan_items = 0
        self.work_time = 0.0
        #: logical demands served by the protocol (denominator of the
        #: per-demand lock-op overhead the paper's section 4.5 argues about)
        self.demands = 0
        # plan-compilation cache counters (0 when the cache is disabled)
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        self.plan_cache_invalidations = 0
        #: held-mode summary refetches forced mid-batch by grants
        #: (0 when nothing batches; see LockTable.request_many)
        self.summary_rebuilds = 0

    # -- recording -------------------------------------------------------------

    def txn_committed(self, response_time: float, wait_time: float):
        self.committed += 1
        self.response_times.append(response_time)
        self.wait_times.append(wait_time)

    def txn_aborted(self):
        self.aborted += 1

    # -- reporting --------------------------------------------------------------

    @property
    def throughput(self) -> float:
        if self.makespan <= 0:
            return 0.0
        return self.committed / self.makespan

    @property
    def mean_response_time(self) -> float:
        if not self.response_times:
            return 0.0
        return sum(self.response_times) / len(self.response_times)

    @property
    def mean_wait_time(self) -> float:
        if not self.wait_times:
            return 0.0
        return sum(self.wait_times) / len(self.wait_times)

    @property
    def total_wait_time(self) -> float:
        return sum(self.wait_times)

    def report(self) -> Dict[str, float]:
        ordered = sorted(self.response_times)
        return {
            "committed": self.committed,
            "aborted": self.aborted,
            "restarts": self.restarts,
            "abandoned": self.abandoned,
            "timeouts": self.timeouts,
            "injected_faults": self.injected_faults,
            "deadlocks": self.deadlocks,
            "makespan": round(self.makespan, 6),
            "throughput": round(self.throughput, 6),
            "mean_response_time": round(self.mean_response_time, 6),
            "p95_response_time": round(_percentile(ordered, 0.95), 6),
            "mean_wait_time": round(self.mean_wait_time, 6),
            "total_wait_time": round(self.total_wait_time, 6),
            "locks_requested": self.locks_requested,
            "demands": self.demands,
            "locks_per_demand": (
                round(self.locks_requested / self.demands, 4)
                if self.demands
                else 0.0
            ),
            "conflict_tests": self.conflict_tests,
            "max_lock_entries": self.max_lock_entries,
            "scan_items": self.scan_items,
            "plan_cache_hits": self.plan_cache_hits,
            "plan_cache_misses": self.plan_cache_misses,
            "plan_cache_invalidations": self.plan_cache_invalidations,
            "summary_rebuilds": self.summary_rebuilds,
        }

    def __repr__(self):
        return "SimulationMetrics(%r)" % (self.report(),)
