"""Abort/retry policy for the concurrency simulator.

When a transaction aborts (deadlock victim, prevention policy, lock
timeout or injected fault) the simulator asks a :class:`RetryPolicy`
whether to restart it and after what backoff.  The policy is pure and
deterministic: attempt ``n`` (1-based — the n-th restart of the same
run) always yields the same decision and delay, so simulated schedules
stay reproducible under fault injection.

The legacy ``Simulator(restart_aborted=, restart_backoff=, max_restarts=)``
parameters map onto a *linear* policy bit-for-bit: the old restart
condition ``restarts < max_restarts`` is ``should_retry(restarts + 1)``
and the old delay ``restart_backoff * restarts`` (after the increment)
is ``delay(attempt)`` with ``kind="linear"``.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SimulationError


class RetryPolicy:
    """Bounded, deterministic abort/retry schedule.

    ``kind`` selects the backoff curve for attempt ``n``:

    * ``linear`` — ``backoff * n`` (the legacy simulator behaviour);
    * ``exponential`` — ``backoff * 2**(n-1)``;
    * ``constant`` — ``backoff``.

    ``cap`` (optional) clamps every delay from above, which keeps
    exponential schedules from stalling the simulated clock.
    """

    KINDS = ("linear", "exponential", "constant")

    __slots__ = ("max_retries", "backoff", "kind", "cap")

    def __init__(
        self,
        max_retries: int = 25,
        backoff: float = 2.0,
        kind: str = "linear",
        cap: Optional[float] = None,
    ):
        if kind not in self.KINDS:
            raise SimulationError(
                "unknown retry kind %r (have: %s)" % (kind, ", ".join(self.KINDS))
            )
        if max_retries < 0:
            raise SimulationError("max_retries must be >= 0")
        if backoff < 0:
            raise SimulationError("backoff must be >= 0")
        self.max_retries = max_retries
        self.backoff = backoff
        self.kind = kind
        self.cap = cap

    @classmethod
    def none(cls) -> "RetryPolicy":
        """Abort permanently on first failure (no restarts)."""
        return cls(max_retries=0, backoff=0.0, kind="constant")

    def should_retry(self, attempt: int) -> bool:
        """Whether the ``attempt``-th restart (1-based) may happen."""
        return attempt <= self.max_retries

    def delay(self, attempt: int) -> float:
        """Backoff before the ``attempt``-th restart."""
        if self.kind == "linear":
            value = self.backoff * attempt
        elif self.kind == "exponential":
            value = self.backoff * (2 ** (attempt - 1))
        else:
            value = self.backoff
        if self.cap is not None:
            value = min(value, self.cap)
        return value

    def __repr__(self):
        return "RetryPolicy(max_retries=%d, backoff=%r, kind=%r%s)" % (
            self.max_retries,
            self.backoff,
            self.kind,
            "" if self.cap is None else ", cap=%r" % self.cap,
        )
