"""Discrete-event concurrency simulation (the paper's future-work
"simulations with regard to the efficiency of the proposed technique")."""

from repro.sim.events import EventQueue
from repro.sim.metrics import SimulationMetrics
from repro.sim.retry import RetryPolicy
from repro.sim.simulator import CallOp, LockOp, QueryOp, Simulator, ThinkOp, WorkOp
from repro.sim.workload import (
    Terminal,
    WorkloadSpec,
    generate_programs,
    generate_query_programs,
    run_closed_system,
    submit_query_workload,
    submit_workload,
)

__all__ = [
    "CallOp",
    "EventQueue",
    "LockOp",
    "QueryOp",
    "RetryPolicy",
    "SimulationMetrics",
    "Simulator",
    "Terminal",
    "ThinkOp",
    "WorkOp",
    "WorkloadSpec",
    "generate_programs",
    "generate_query_programs",
    "run_closed_system",
    "submit_query_workload",
    "submit_workload",
]
