"""The discrete-event concurrency simulator.

Runs transaction *programs* against a lock protocol in simulated time —
the efficiency simulation the paper lists as future work (section 5), and
the reason this reproduction can benchmark concurrency despite Python's
GIL (see DESIGN.md).

A program is a sequence of operations:

* :class:`LockOp` — one logical lock demand; the active protocol expands
  it into explicit requests, each costing ``lock_cost`` simulated time
  (lock administration + conflict test), plus ``scan_item_cost`` per
  object visited by reverse-reference scans (naive baseline);
* :class:`QueryOp` — a full query; analyzed/optimized once, its lock
  demands acquired stepwise, then ``work_per_row`` charged per result;
* :class:`WorkOp` — pure processing time while holding locks;
* :class:`ThinkOp` — user think time (long, conversational transactions).

Blocked transactions suspend; a lock release wakes the head waiters.
Deadlocks are detected on every block, the youngest victim is aborted,
rolled back and — by default — restarted after a backoff.  At commit all
locks are released (strict 2PL, degree-3 consistency).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import (
    FaultInjected,
    LockError,
    LockTimeoutError,
    SimulationError,
)
from repro.locking.lock_table import LockRequest
from repro.locking.modes import LockMode
from repro.sim.events import EventQueue
from repro.sim.metrics import SimulationMetrics
from repro.sim.retry import RetryPolicy
from repro.txn.transaction import Transaction, TxnState


class LockOp:
    """Demand ``mode`` on ``resource`` under the protocol's rules."""

    __slots__ = ("resource", "mode", "via")

    def __init__(self, resource: Tuple, mode: LockMode, via: Optional[Tuple] = None):
        self.resource = resource
        self.mode = mode
        self.via = via

    def __repr__(self):
        return "LockOp(%r, %s)" % (self.resource, self.mode)


class QueryOp:
    """Execute a query: lock per its query-specific lock graph, then work."""

    __slots__ = ("text", "work_per_row")

    def __init__(self, text: str, work_per_row: float = 0.5):
        self.text = text
        self.work_per_row = work_per_row

    def __repr__(self):
        return "QueryOp(%r)" % self.text


class CallOp:
    """Run ``fn(txn)`` instantly at this point of the program.

    Used for data mutations that must happen after the locks of earlier
    ops are held (e.g. applying a query's SET clause); any changes should
    be registered in the transaction's undo log so restarts roll back.
    """

    __slots__ = ("fn",)

    def __init__(self, fn):
        self.fn = fn

    def __repr__(self):
        return "CallOp(%r)" % (self.fn,)


class WorkOp:
    """Processing for ``duration`` simulated time units (locks held)."""

    __slots__ = ("duration",)

    def __init__(self, duration: float):
        self.duration = duration

    def __repr__(self):
        return "WorkOp(%r)" % self.duration


class ThinkOp(WorkOp):
    """User think time — identical mechanics, separate name for clarity."""

    def __repr__(self):
        return "ThinkOp(%r)" % self.duration


Program = Sequence[Union[LockOp, QueryOp, WorkOp]]


class _TxnRun:
    """Run-time state of one submitted transaction."""

    __slots__ = (
        "name",
        "principal",
        "program",
        "txn",
        "op_index",
        "pending_steps",
        "waiting_request",
        "submitted_at",
        "started_at",
        "wait_started_at",
        "waited",
        "restarts",
        "done",
        "on_done",
        "birth_ts",
    )

    def __init__(self, name, principal, program, submitted_at):
        self.name = name
        self.principal = principal
        self.program = list(program)
        self.txn: Optional[Transaction] = None
        self.op_index = 0
        #: explicit lock steps of the op in progress, not yet acquired
        self.pending_steps: List = []
        self.waiting_request: Optional[LockRequest] = None
        self.submitted_at = submitted_at
        self.started_at = submitted_at
        self.wait_started_at: Optional[float] = None
        self.waited = 0.0
        self.restarts = 0
        self.done = False
        #: optional callback fired once when the run finally completes
        self.on_done = None
        #: first start timestamp, preserved across restarts (wait-die /
        #: wound-wait need stable transaction ages to avoid starvation)
        self.birth_ts = None


class Simulator:
    """Drives transaction programs through a protocol in simulated time."""

    #: supported deadlock-handling policies: detection with youngest-victim
    #: abort (the default used throughout the experiments), and the two
    #: classic timestamp-based prevention schemes.
    POLICIES = ("detect", "wait_die", "wound_wait")

    def __init__(
        self,
        protocol,
        executor=None,
        lock_cost: float = 0.05,
        scan_item_cost: float = 0.01,
        restart_aborted: bool = True,
        restart_backoff: float = 2.0,
        max_restarts: int = 25,
        deadlock_policy: str = "detect",
        retry_policy: Optional[RetryPolicy] = None,
    ):
        if deadlock_policy not in self.POLICIES:
            raise SimulationError(
                "unknown deadlock policy %r (have: %s)"
                % (deadlock_policy, ", ".join(self.POLICIES))
            )
        self.protocol = protocol
        self.executor = executor
        self.manager = protocol.manager
        self.events = EventQueue()
        self.metrics = SimulationMetrics()
        self.lock_cost = lock_cost
        self.scan_item_cost = scan_item_cost
        self.restart_aborted = restart_aborted
        self.restart_backoff = restart_backoff
        self.max_restarts = max_restarts
        if retry_policy is None:
            # the legacy knobs *are* a linear policy (see sim/retry.py)
            retry_policy = RetryPolicy(
                max_retries=max_restarts if restart_aborted else 0,
                backoff=restart_backoff,
                kind="linear",
            )
        self.retry_policy = retry_policy
        self.deadlock_policy = deadlock_policy
        #: when set, run the repro.verify auditor after every N commits
        #: and raise on the first violation (continuous self-checking for
        #: long experiment runs; costs time, off by default)
        self.audit_every: Optional[int] = None
        self._runs: List[_TxnRun] = []
        self._by_txn: Dict[Transaction, _TxnRun] = {}

    # -- submission ---------------------------------------------------------------

    def submit(
        self,
        program: Program,
        at: float = 0.0,
        name: Optional[str] = None,
        principal=None,
    ) -> _TxnRun:
        run = _TxnRun(name or "txn%d" % (len(self._runs) + 1), principal, program, at)
        self._runs.append(run)
        self.events.schedule_at(at, lambda: self._start(run))
        return run

    def run(self, until: Optional[float] = None) -> SimulationMetrics:
        """Process events to completion and return the metrics."""
        self.events.run(until=until)
        unfinished = [run for run in self._runs if not run.done]
        if unfinished and until is None:
            raise SimulationError(
                "simulation drained but %d transaction(s) unfinished "
                "(undetected deadlock?): %r"
                % (len(unfinished), [run.name for run in unfinished])
            )
        self.metrics.makespan = self.events.now
        table = self.manager.table
        self.metrics.conflict_tests = table.conflict_tests
        self.metrics.max_lock_entries = table.max_entries
        self.metrics.summary_rebuilds = table.summary_rebuilds
        self.metrics.locks_requested = self.protocol.locks_requested
        self.metrics.demands = self.protocol.demands
        cache = self.protocol.plan_cache
        self.metrics.plan_cache_hits = cache.hits
        self.metrics.plan_cache_misses = cache.misses
        self.metrics.plan_cache_invalidations = cache.invalidations
        database = self.protocol.catalog.database
        self.metrics.scan_items = database.scan_cost
        return self.metrics

    # -- lifecycle ------------------------------------------------------------------

    def _start(self, run: _TxnRun):
        run.txn = Transaction(
            principal=run.principal, name=run.name, start_ts=run.birth_ts
        )
        if run.birth_ts is None:
            run.birth_ts = run.txn.start_ts
        run.started_at = self.events.now
        run.op_index = 0
        run.pending_steps = []
        run.waiting_request = None
        self._by_txn[run.txn] = run
        self._advance(run)

    def _advance(self, run: _TxnRun):
        """Drive the run forward until it blocks, sleeps or commits.

        Lock failures and injected faults surfacing anywhere on the
        forward path (planning, acquisition, commit) abort the run;
        the retry policy then decides whether it restarts.
        """
        if run.done or run.txn is None or not run.txn.active:
            return
        try:
            self._advance_inner(run)
        except (LockError, FaultInjected) as exc:
            if isinstance(exc, LockTimeoutError):
                self.metrics.timeouts += 1
            if isinstance(exc, FaultInjected):
                self.metrics.injected_faults += 1
            self._abort(run)

    def _advance_inner(self, run: _TxnRun):
        while True:
            if run.pending_steps:
                if not self._acquire_next(run):
                    return  # blocked or paying lock cost asynchronously
                continue
            if run.op_index >= len(run.program):
                self._commit(run)
                return
            op = run.program[run.op_index]
            run.op_index += 1
            if isinstance(op, WorkOp):
                self.metrics.work_time += op.duration
                self.events.schedule(op.duration, lambda r=run: self._advance(r))
                return
            if isinstance(op, LockOp):
                if not self._plan_lock(run, op):
                    return  # paying scan cost; continuation scheduled
                continue
            if isinstance(op, QueryOp):
                self._plan_query(run, op)
                continue
            if isinstance(op, CallOp):
                op.fn(run.txn)
                continue
            raise SimulationError("unknown program op %r" % (op,))

    def _plan_lock(self, run: _TxnRun, op: LockOp) -> bool:
        """Plan one demand; False when the run suspended to pay scan cost."""
        database = self.protocol.catalog.database
        scan_before = database.scan_cost
        plan = self.protocol.plan_request(run.txn, op.resource, op.mode, via=op.via)
        scan_delta = database.scan_cost - scan_before
        run.pending_steps = list(plan)
        if scan_delta:
            # charge the reverse-scan work before any acquisition
            self.events.schedule(
                scan_delta * self.scan_item_cost, lambda r=run: self._advance(r)
            )
            return False
        return True

    def _plan_query(self, run: _TxnRun, op: QueryOp):
        if self.executor is None:
            raise SimulationError("QueryOp needs a Simulator(executor=...)")
        from repro.query.parser import parse_query

        query = parse_query(op.text) if isinstance(op.text, str) else op.text
        rows, demands = self.executor.lock_requirements(run.txn, query)
        steps: List = []
        for resource, mode in demands:
            plan = self.protocol.plan_request(run.txn, resource, mode)
            steps.extend(plan)
        run.pending_steps = steps
        insert_at = run.op_index
        if query.assignments and rows:
            # apply SET clauses once every lock of this query is held
            run.program.insert(
                insert_at,
                CallOp(
                    lambda txn, q=query, r=rows: self.executor._apply_assignments(
                        txn, q, r
                    )
                ),
            )
            insert_at += 1
        if rows and op.work_per_row:
            run.program.insert(insert_at, WorkOp(op.work_per_row * len(rows)))

    def _acquire_next(self, run: _TxnRun) -> bool:
        """Acquire one pending explicit lock; False if the run suspended."""
        step = run.pending_steps[0]
        if self.manager.holds_at_least(run.txn, step.resource, step.mode):
            run.pending_steps.pop(0)
            return True
        self.protocol.locks_requested += 1
        request = self.manager.acquire(run.txn, step.resource, step.mode, wait=True)
        if request.granted:
            run.pending_steps.pop(0)
            if self.lock_cost:
                self.events.schedule(self.lock_cost, lambda r=run: self._advance(r))
                return False
            return True
        run.waiting_request = request
        run.wait_started_at = self.events.now
        if self.deadlock_policy == "detect":
            self._check_deadlock()
        elif self.deadlock_policy == "wait_die":
            self._wait_die(run)
        else:
            self._wound_wait(run)
        return False

    def _release_all_resilient(self, txn) -> List[LockRequest]:
        """Release with one retry: a single injected release fault must
        not leave a finished transaction holding locks."""
        try:
            return self.manager.release_all(txn)
        except (LockError, FaultInjected):
            self.metrics.injected_faults += 1
            return self.manager.release_all(txn)

    def _commit(self, run: _TxnRun):
        # release *before* flipping state: if the release itself faults
        # the transaction is still ACTIVE, so the abort path can clean up
        woken = self._release_all_resilient(run.txn)
        run.txn.state = TxnState.COMMITTED
        run.done = True
        self.metrics.txn_committed(
            response_time=self.events.now - run.submitted_at,
            wait_time=run.waited,
        )
        self._wake(woken)
        if self.audit_every and self.metrics.committed % self.audit_every == 0:
            from repro.verify import audit

            violations = audit(self.protocol)
            if violations:
                raise SimulationError(
                    "invariant violation after commit of %r: %r"
                    % (run.name, violations[:3])
                )
        if run.on_done is not None:
            callback, run.on_done = run.on_done, None
            callback(run)

    def _wake(self, woken: List[LockRequest]):
        for request in woken:
            run = self._by_txn.get(request.txn)
            if run is None or run.waiting_request is not request:
                continue
            run.waiting_request = None
            if run.wait_started_at is not None:
                run.waited += self.events.now - run.wait_started_at
                run.wait_started_at = None
            run.pending_steps.pop(0)
            delay = self.lock_cost if self.lock_cost else 0.0
            self.events.schedule(delay, lambda r=run: self._advance(r))

    # -- deadlock handling ----------------------------------------------------------

    def _blockers_of(self, run: _TxnRun):
        """Every transaction the waiter transitively depends on right now.

        Uses the lock table's waits-for edges (incompatible holders AND
        incompatible requests queued ahead — FIFO makes those real
        blockers), so the prevention policies see exactly the graph the
        detector would."""
        if run.waiting_request is None:
            return []
        edges = self.manager.table.waits_for_edges()
        return sorted(
            {dst for src, dst in edges if src is run.txn},
            key=lambda txn: getattr(txn, "start_ts", 0),
        )

    def _wait_die(self, run: _TxnRun):
        """Wait-die prevention: a requester younger than a blocker dies
        (aborts and restarts with its original timestamp)."""
        for blocker in self._blockers_of(run):
            if run.txn.start_ts > blocker.start_ts:
                # prevention aborts are counted as aborts/restarts only;
                # by construction no cycle ever forms, so deadlocks stay 0
                self._abort(run)
                return

    def _wound_wait(self, run: _TxnRun):
        """Wound-wait prevention: an older requester wounds (aborts) every
        younger blocker; a younger requester simply waits."""
        for blocker in list(self._blockers_of(run)):
            if run.txn.start_ts < blocker.start_ts:
                victim = self._by_txn.get(blocker)
                if victim is not None:
                    self._abort(victim)

    def _check_deadlock(self):
        while True:
            cycle = self.manager.detect_deadlock()
            if cycle is None:
                return
            self.metrics.deadlocks += 1
            victim_txn = self.manager.detector.pick_victim(cycle)
            victim = self._by_txn.get(victim_txn)
            if victim is None:
                raise SimulationError("deadlock victim %r unknown" % (victim_txn,))
            self._abort(victim)

    def _abort(self, run: _TxnRun):
        run.txn.rollback_data()
        run.txn.state = TxnState.ABORTED
        woken_by_cancel: List[LockRequest] = []
        if run.waiting_request is not None:
            woken_by_cancel = self.manager.cancel(run.waiting_request)
            run.waiting_request = None
        if run.wait_started_at is not None:
            run.waited += self.events.now - run.wait_started_at
            run.wait_started_at = None
        woken = self._release_all_resilient(run.txn)
        self._by_txn.pop(run.txn, None)
        self.metrics.txn_aborted()
        attempt = run.restarts + 1
        if self.retry_policy.should_retry(attempt):
            run.restarts = attempt
            self.metrics.restarts += 1
            run.waited = 0.0
            backoff = self.retry_policy.delay(attempt)
            self.events.schedule(backoff, lambda r=run: self._start(r))
        else:
            run.done = True
            self.metrics.abandoned += 1
            if run.on_done is not None:
                callback, run.on_done = run.on_done, None
                callback(run)
        self._wake(woken_by_cancel + woken)
