"""A minimal deterministic discrete-event engine.

The concurrency experiments run in *simulated* time: transactions are
programs advanced by the engine, lock waits suspend them, releases wake
them.  Determinism matters — identical seeds must give identical traces so
the benchmarks are reproducible — hence the (time, sequence) total order
on events.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError


class EventQueue:
    """Priority queue of (time, seq) ordered callbacks."""

    def __init__(self):
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self.now = 0.0
        self.processed = 0

    def schedule(self, delay: float, callback: Callable[[], None]):
        """Run ``callback`` at ``now + delay`` (delay >= 0)."""
        if delay < 0:
            raise SimulationError("cannot schedule into the past (delay=%r)" % delay)
        heapq.heappush(self._heap, (self.now + delay, next(self._sequence), callback))

    def schedule_at(self, time: float, callback: Callable[[], None]):
        if time < self.now:
            raise SimulationError(
                "cannot schedule at %r before now=%r" % (time, self.now)
            )
        heapq.heappush(self._heap, (time, next(self._sequence), callback))

    def empty(self) -> bool:
        return not self._heap

    def step(self) -> bool:
        """Process one event; returns False when the queue is empty."""
        if not self._heap:
            return False
        time, _seq, callback = heapq.heappop(self._heap)
        self.now = time
        self.processed += 1
        callback()
        return True

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000):
        """Drain the queue (optionally bounded by time or event count)."""
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                self.now = until
                return
            if self.processed >= max_events:
                raise SimulationError(
                    "event budget exhausted (%d events) - livelock?" % max_events
                )
            self.step()
