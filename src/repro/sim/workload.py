"""Workload generation for the concurrency experiments.

Produces deterministic (seeded) transaction programs over the
cells/effectors database: mixes of part-readers, robot-updaters, library
readers and library maintainers, with exponential interarrival times and
configurable think/work times — the knobs of experiments E6 and E9
(object depth, sharing degree, transaction length, lock-mode
restrictiveness).
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.graphs.units import component_resource, object_resource
from repro.locking.modes import S, X
from repro.nf2.paths import parse_path
from repro.sim.simulator import LockOp, Program, ThinkOp, WorkOp


class WorkloadSpec:
    """Parameters of a synthetic workload over the cells database.

    ``update_fraction`` — share of transactions that update a robot;
    ``whole_object_fraction`` — share of accesses that need the whole cell
    (vs. one component); ``library_update_fraction`` — share of
    transactions that maintain the shared effector library (high-conflict
    writers on common data); ``work_time``/``think_time`` scale transaction
    length (think > 0 models conversational / long transactions).
    """

    #: principal used by cell/robot transactions (modify right on "cells")
    ENGINEER = "engineer"
    #: principal used by library maintainers (modify right on "effectors")
    LIBRARIAN = "librarian"

    def __init__(
        self,
        n_transactions: int = 40,
        update_fraction: float = 0.5,
        whole_object_fraction: float = 0.2,
        library_update_fraction: float = 0.0,
        work_time: float = 1.0,
        think_time: float = 0.0,
        mean_interarrival: float = 0.5,
        seed: int = 42,
    ):
        self.n_transactions = n_transactions
        self.update_fraction = update_fraction
        self.whole_object_fraction = whole_object_fraction
        self.library_update_fraction = library_update_fraction
        self.work_time = work_time
        self.think_time = think_time
        self.mean_interarrival = mean_interarrival
        self.seed = seed

    def grant_rights(self, authorization):
        """Install the scenario's rights: engineers modify cells but only
        read the effector library (the Figure 7 assumption); librarians
        maintain the library.  Call before submitting the workload so
        rule 4' locks common data least-restrictively."""
        authorization.grant_modify(self.ENGINEER, "cells")
        authorization.grant_read(self.ENGINEER, "effectors")
        authorization.grant_modify(self.LIBRARIAN, "effectors")
        return authorization


def generate_programs(
    catalog, spec: WorkloadSpec
) -> List[Tuple[float, Program, str]]:
    """Build (arrival_time, program, name) triples for a workload spec.

    Transaction shapes:

    * *robot updater* — X one robot of a random cell, work;
    * *part reader* — S the c_objects set of a random cell, work;
    * *whole-cell transaction* — S or X the entire cell object, work;
    * *library maintainer* — X one effector in the shared library, work.

    Think time, when configured, is inserted **while locks are held**
    (conversational transactions keep their locks, section 1).
    """
    database = catalog.database
    rng = random.Random(spec.seed)
    cells = sorted(obj.key for obj in database.relation("cells"))
    effectors = sorted(obj.key for obj in database.relation("effectors"))
    robots_by_cell = {
        key: [robot["robot_id"] for robot in database.get("cells", key).root["robots"]]
        for key in cells
    }

    programs: List[Tuple[float, Program, str, str]] = []
    clock = 0.0
    for index in range(spec.n_transactions):
        clock += rng.expovariate(1.0 / spec.mean_interarrival)
        cell_key = rng.choice(cells)
        cell_res = object_resource(catalog, "cells", cell_key)
        draw = rng.random()
        ops: List = []
        principal = spec.ENGINEER
        if draw < spec.library_update_fraction and effectors:
            effector_key = rng.choice(effectors)
            target = object_resource(catalog, "effectors", effector_key)
            ops.append(LockOp(target, X))
            name = "lib-update-%d" % index
            principal = spec.LIBRARIAN
        elif rng.random() < spec.whole_object_fraction:
            mode = X if rng.random() < spec.update_fraction else S
            ops.append(LockOp(cell_res, mode))
            name = "cell-%s-%d" % (mode.value, index)
        elif rng.random() < spec.update_fraction:
            robot_id = rng.choice(robots_by_cell[cell_key])
            target = component_resource(
                cell_res, parse_path("robots[%s]" % robot_id)
            )
            ops.append(LockOp(target, X))
            name = "robot-update-%d" % index
        else:
            target = component_resource(cell_res, parse_path("c_objects"))
            ops.append(LockOp(target, S))
            name = "parts-read-%d" % index
        ops.append(WorkOp(spec.work_time))
        if spec.think_time:
            ops.append(ThinkOp(spec.think_time))
        programs.append((clock, ops, name, principal))
    return programs


def generate_query_programs(catalog, spec: WorkloadSpec):
    """Like :func:`generate_programs` but phrased as HDBL queries.

    Each transaction is a :class:`~repro.sim.simulator.QueryOp`, so the
    simulator exercises the full section-4.1 pipeline (analysis,
    optimizer, query-specific lock graph) per transaction.  Requires a
    ``Simulator(executor=...)``.
    """
    from repro.sim.simulator import QueryOp

    database = catalog.database
    rng = random.Random(spec.seed)
    cells = sorted(obj.key for obj in database.relation("cells"))
    robots_by_cell = {
        key: [robot["robot_id"] for robot in database.get("cells", key).root["robots"]]
        for key in cells
    }
    programs = []
    clock = 0.0
    for index in range(spec.n_transactions):
        clock += rng.expovariate(1.0 / spec.mean_interarrival)
        cell_key = rng.choice(cells)
        principal = spec.ENGINEER
        if rng.random() < spec.update_fraction:
            robot = rng.choice(robots_by_cell[cell_key])
            text = (
                "SELECT r FROM c IN cells, r IN c.robots "
                "WHERE c.cell_id = '%s' AND r.robot_id = '%s' FOR UPDATE"
                % (cell_key, robot)
            )
            name = "q-update-%d" % index
        else:
            text = (
                "SELECT o FROM c IN cells, o IN c.c_objects "
                "WHERE c.cell_id = '%s' FOR READ" % cell_key
            )
            name = "q-read-%d" % index
        ops = [QueryOp(text, work_per_row=spec.work_time)]
        if spec.think_time:
            ops.append(ThinkOp(spec.think_time))
        programs.append((clock, ops, name, principal))
    return programs


def submit_query_workload(simulator, catalog, spec: WorkloadSpec, authorization=None):
    """Generate and submit a query-based workload (QueryOp programs)."""
    if authorization is not None:
        spec.grant_rights(authorization)
    runs = []
    for arrival, program, name, principal in generate_query_programs(catalog, spec):
        runs.append(
            simulator.submit(program, at=arrival, name=name, principal=principal)
        )
    return runs


class Terminal:
    """One terminal of a closed system (Ries/Stonebraker-style).

    Submits its next transaction ``think_time`` after the previous one
    completes, up to ``jobs`` transactions.  ``program_factory(index)``
    returns (ops, name, principal) for the terminal's index-th job.
    """

    def __init__(self, simulator, program_factory, think_time, jobs, start_at=0.0):
        self.simulator = simulator
        self.program_factory = program_factory
        self.think_time = think_time
        self.jobs = jobs
        self.completed = 0
        self._submit_next(start_at)

    def _submit_next(self, at):
        if self.completed >= self.jobs:
            return
        ops, name, principal = self.program_factory(self.completed)
        run = self.simulator.submit(ops, at=at, name=name, principal=principal)
        run.on_done = self._job_done

    def _job_done(self, run):
        self.completed += 1
        self._submit_next(self.simulator.events.now + self.think_time)


def run_closed_system(
    simulator,
    catalog,
    spec: WorkloadSpec,
    terminals: int,
    jobs_per_terminal: int = 5,
    authorization=None,
):
    """Closed-loop workload: ``terminals`` concurrent users, each running
    ``jobs_per_terminal`` transactions back to back (multiprogramming
    level = terminals).  Returns the Terminal handles; run the simulator
    afterwards and read its metrics.
    """
    if authorization is not None:
        spec.grant_rights(authorization)
    # one long program stream per terminal, drawn from the same generator
    pool_spec = WorkloadSpec(
        n_transactions=terminals * jobs_per_terminal,
        update_fraction=spec.update_fraction,
        whole_object_fraction=spec.whole_object_fraction,
        library_update_fraction=spec.library_update_fraction,
        work_time=spec.work_time,
        think_time=0.0,
        mean_interarrival=spec.mean_interarrival,
        seed=spec.seed,
    )
    pool = generate_programs(catalog, pool_spec)
    handles = []
    for terminal_index in range(terminals):
        slice_ = pool[terminal_index::terminals]

        def factory(job_index, jobs=slice_):
            _, ops, name, principal = jobs[job_index % len(jobs)]
            return list(ops), name, principal

        handles.append(
            Terminal(
                simulator,
                factory,
                think_time=spec.think_time,
                jobs=jobs_per_terminal,
                start_at=terminal_index * 0.01,
            )
        )
    return handles


def submit_workload(simulator, catalog, spec: WorkloadSpec, authorization=None):
    """Generate and submit a workload; returns the run handles.

    When ``authorization`` is given (usually the stack's manager), the
    spec's engineer/librarian rights are installed first so rule 4' can
    lock common data least-restrictively.
    """
    if authorization is not None:
        spec.grant_rights(authorization)
    runs = []
    for arrival, program, name, principal in generate_programs(catalog, spec):
        runs.append(
            simulator.submit(program, at=arrival, name=name, principal=principal)
        )
    return runs
