"""Canned experiment runners: the library API behind the CLI and benches.

Downstream users reproduce the paper's evaluation with three calls:

>>> from repro.sim.experiments import protocol_comparison, scaling_sweep
>>> rows = protocol_comparison()          # E6's table as dicts
>>> rows = scaling_sweep("work_time")     # one E9 axis

Every runner is deterministic given its seed and returns plain dicts so
results serialize straight into JSON/CSV.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import repro
from repro.protocol import (
    HerrmannProtocol,
    SystemRRelationProtocol,
    SystemRTupleProtocol,
    XSQLProtocol,
)
from repro.sim.simulator import Simulator
from repro.sim.workload import WorkloadSpec, submit_workload
from repro.workloads import build_cells_database

#: protocols compared by default, report order
DEFAULT_PROTOCOLS = (
    HerrmannProtocol,
    SystemRTupleProtocol,
    SystemRRelationProtocol,
    XSQLProtocol,
)

DEFAULT_DB = dict(n_cells=3, n_objects=8, n_robots=4, n_effectors=5, seed=2)

DEFAULT_SPEC = dict(
    n_transactions=60,
    update_fraction=0.5,
    whole_object_fraction=0.15,
    library_update_fraction=0.05,
    work_time=2.0,
    mean_interarrival=0.4,
    seed=21,
)

#: the §5 claim's axes and their default sweep settings
SWEEP_AXES: Dict[str, Sequence[float]] = {
    "work_time": (0.5, 2.0, 8.0),
    "think_time": (0.0, 10.0, 40.0),
    "update_fraction": (0.2, 0.6, 1.0),
}


def run_one(
    protocol_cls,
    spec: Optional[WorkloadSpec] = None,
    db_kwargs: Optional[dict] = None,
    lock_cost: float = 0.02,
    scan_item_cost: float = 0.01,
):
    """One simulation run; returns the metrics report dict + protocol name."""
    database, catalog = build_cells_database(**(db_kwargs or DEFAULT_DB))
    stack = repro.make_stack(database, catalog, protocol_cls=protocol_cls)
    simulator = Simulator(
        stack.protocol, lock_cost=lock_cost, scan_item_cost=scan_item_cost
    )
    submit_workload(
        simulator,
        catalog,
        spec or WorkloadSpec(**DEFAULT_SPEC),
        authorization=stack.authorization,
    )
    report = simulator.run().report()
    report["protocol"] = protocol_cls.name
    return report


def protocol_comparison(
    protocols=DEFAULT_PROTOCOLS,
    spec: Optional[WorkloadSpec] = None,
    db_kwargs: Optional[dict] = None,
) -> List[dict]:
    """E6: the same workload under each protocol (one report per row)."""
    return [run_one(protocol_cls, spec, db_kwargs) for protocol_cls in protocols]


def scaling_sweep(
    axis: str,
    settings: Optional[Sequence[float]] = None,
    base_spec: Optional[dict] = None,
    db_kwargs: Optional[dict] = None,
) -> List[dict]:
    """E9: one axis of the section-5 claim.

    Returns one row per setting with the herrmann and xsql throughputs
    and their ratio.
    """
    if axis not in SWEEP_AXES:
        raise ValueError(
            "unknown sweep axis %r (have: %s)" % (axis, ", ".join(SWEEP_AXES))
        )
    settings = settings if settings is not None else SWEEP_AXES[axis]
    base = dict(base_spec or DEFAULT_SPEC)
    base.pop("library_update_fraction", None)  # keep the sweep single-factor
    rows = []
    for value in settings:
        base[axis] = value
        spec = WorkloadSpec(**base)
        ours = run_one(HerrmannProtocol, spec, db_kwargs)
        xsql = run_one(XSQLProtocol, spec, db_kwargs)
        rows.append(
            {
                "axis": axis,
                "setting": value,
                "herrmann_throughput": ours["throughput"],
                "xsql_throughput": xsql["throughput"],
                "ratio": round(
                    ours["throughput"] / max(xsql["throughput"], 1e-9), 4
                ),
            }
        )
    return rows


def write_csv(rows: List[dict], path) -> int:
    """Write experiment rows (as returned by the runners) to a CSV file.

    Column order follows the first row's key order; missing keys in later
    rows are left empty.  Returns the number of data rows written.
    """
    import csv

    if not rows:
        raise ValueError("no rows to write")
    fieldnames = list(rows[0].keys())
    for row in rows[1:]:
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return len(rows)


def sharing_sweep(refs_settings=(0, 2, 4), base_spec=None) -> List[dict]:
    """E9b: the sharing-degree axis (a database property, not a spec one)."""
    rows = []
    for refs in refs_settings:
        db = dict(DEFAULT_DB, n_cells=2, refs_per_robot=refs)
        spec = WorkloadSpec(**(base_spec or DEFAULT_SPEC))
        ours = run_one(HerrmannProtocol, spec, db)
        xsql = run_one(XSQLProtocol, spec, db)
        rows.append(
            {
                "axis": "refs_per_robot",
                "setting": refs,
                "herrmann_throughput": ours["throughput"],
                "xsql_throughput": xsql["throughput"],
                "ratio": round(
                    ours["throughput"] / max(xsql["throughput"], 1e-9), 4
                ),
            }
        )
    return rows
