"""Workload schemas and generators (cells/effectors, part library, VLSI)."""

from repro.workloads.cells import (
    Q1,
    Q2,
    Q3,
    build_cells_database,
    cells_schema,
    effector_keys,
    effectors_schema,
    robot_ids,
)
from repro.workloads.deep import (
    build_deep_database,
    deep_schema,
    random_component,
)
from repro.workloads.design import (
    build_design_database,
    chips_schema,
    stdcells_schema,
)
from repro.workloads.partlib import (
    assemblies_schema,
    build_partlib_database,
    materials_schema,
    parts_schema,
)

__all__ = [
    "Q1",
    "Q2",
    "Q3",
    "assemblies_schema",
    "build_cells_database",
    "build_deep_database",
    "build_design_database",
    "build_partlib_database",
    "cells_schema",
    "chips_schema",
    "deep_schema",
    "effector_keys",
    "effectors_schema",
    "materials_schema",
    "parts_schema",
    "random_component",
    "robot_ids",
    "stdcells_schema",
]
