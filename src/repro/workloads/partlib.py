"""Part library workload: nested common data.

Section 2 motivates non-disjoint complex objects with "part libraries with
component parts or with standard parts like bolts and nuts or ICs" and
notes that "common data may again contain common data".  This workload
exercises exactly that: a two-level sharing chain

    assemblies ──ref──> parts ──ref──> materials

* ``assemblies`` — top-level products, each composed of a set of
  positions referencing shared ``parts``;
* ``parts`` — the standard-part library (bolts, nuts, ICs); each part
  references the shared ``materials`` it is made of;
* ``materials`` — the innermost common data.

Transitive downward propagation (an S/X lock on an assembly must reach
material entry points *through* the part entry points) is tested on this
schema.
"""

from __future__ import annotations

import random
from typing import Optional, Tuple

from repro.catalog import Catalog
from repro.nf2 import (
    AtomicType,
    Database,
    ListType,
    RefType,
    RelationSchema,
    SetType,
    TupleType,
    make_list,
    make_set,
    make_tuple,
)


def materials_schema() -> RelationSchema:
    return RelationSchema(
        "materials",
        TupleType(
            [
                ("mat_id", AtomicType("str")),
                ("name", AtomicType("str")),
                ("density", AtomicType("float")),
            ]
        ),
        segment="seg_materials",
    )


def parts_schema() -> RelationSchema:
    """Standard parts: each references the materials it is made of."""
    return RelationSchema(
        "parts",
        TupleType(
            [
                ("part_id", AtomicType("str")),
                ("name", AtomicType("str")),
                ("materials", SetType(RefType("materials"))),
            ]
        ),
        segment="seg_parts",
    )


def assemblies_schema() -> RelationSchema:
    """Products: a list of positions, each referencing one standard part."""
    return RelationSchema(
        "assemblies",
        TupleType(
            [
                ("asm_id", AtomicType("str")),
                (
                    "positions",
                    ListType(
                        TupleType(
                            [
                                ("pos_id", AtomicType("int")),
                                ("quantity", AtomicType("int")),
                                ("part", RefType("parts")),
                            ]
                        )
                    ),
                ),
            ]
        ),
        segment="seg_asm",
    )


def build_partlib_database(
    n_assemblies: int = 4,
    positions_per_assembly: int = 3,
    n_parts: int = 6,
    n_materials: int = 3,
    materials_per_part: int = 2,
    seed: Optional[int] = 11,
) -> Tuple[Database, Catalog]:
    """Create and populate the three-relation part library."""
    database = Database("db1")
    catalog = Catalog(database)
    database.create_relations(
        [materials_schema(), parts_schema(), assemblies_schema()]
    )
    rng = random.Random(seed)

    material_refs = []
    names = ["steel", "brass", "nylon", "copper", "titanium", "ceramic"]
    for index in range(1, n_materials + 1):
        obj = database.insert(
            "materials",
            make_tuple(
                mat_id="m%d" % index,
                name=names[(index - 1) % len(names)],
                density=1.0 + index * 0.5,
            ),
        )
        material_refs.append(obj.reference())

    part_refs = []
    kinds = ["bolt", "nut", "ic", "washer", "bracket", "spring"]
    for index in range(1, n_parts + 1):
        count = min(materials_per_part, len(material_refs))
        chosen = rng.sample(material_refs, count) if count else []
        obj = database.insert(
            "parts",
            make_tuple(
                part_id="p%d" % index,
                name="%s-%d" % (kinds[(index - 1) % len(kinds)], index),
                materials=make_set(*chosen),
            ),
        )
        part_refs.append(obj.reference())

    for asm_index in range(1, n_assemblies + 1):
        positions = []
        for pos_index in range(1, positions_per_assembly + 1):
            positions.append(
                make_tuple(
                    pos_id=pos_index,
                    quantity=rng.randint(1, 12),
                    part=rng.choice(part_refs),
                )
            )
        database.insert(
            "assemblies",
            make_tuple(asm_id="a%d" % asm_index, positions=make_list(*positions)),
        )
    return database, catalog
