"""VLSI-design workload: deep disjoint objects and long transactions.

Section 1: "In non-standard applications like VLSI-design, however, the
duration of a transaction can last up to days or even weeks (long
transactions)."  This workload provides

* a deep, *disjoint* design hierarchy (chips → modules → cells → gates)
  for experiment E8 (the paper's acknowledged disadvantage 2: overhead on
  exclusively disjoint access) and the depth axis of E9;
* a shared standard-cell library variant for the sharing axis;
* long-transaction program builders (check-out style, large think times).
"""

from __future__ import annotations

import random
from typing import Optional, Tuple

from repro.catalog import Catalog
from repro.nf2 import (
    AtomicType,
    Database,
    RefType,
    RelationSchema,
    SetType,
    TupleType,
    make_set,
    make_tuple,
)


def stdcells_schema() -> RelationSchema:
    """The shared standard-cell library (common data)."""
    return RelationSchema(
        "stdcells",
        TupleType(
            [
                ("std_id", AtomicType("str")),
                ("function", AtomicType("str")),
                ("area", AtomicType("float")),
            ]
        ),
        segment="seg_lib",
    )


def chips_schema(shared_library: bool = False) -> RelationSchema:
    """Design hierarchy: chip → modules → cells → gates.

    With ``shared_library=True`` each cell additionally references a
    standard cell from the shared library, making the objects
    non-disjoint.
    """
    gate = TupleType(
        [
            ("gate_id", AtomicType("int")),
            ("kind", AtomicType("str")),
            ("fanin", AtomicType("int")),
        ]
    )
    cell_attrs = [
        ("cell_id", AtomicType("str")),
        ("placed", AtomicType("bool")),
        ("gates", SetType(gate)),
    ]
    if shared_library:
        cell_attrs.append(("std", RefType("stdcells")))
    cell = TupleType(cell_attrs)
    module = TupleType(
        [
            ("mod_id", AtomicType("str")),
            ("kind", AtomicType("str")),
            ("cells", SetType(cell)),
        ]
    )
    return RelationSchema(
        "chips",
        TupleType(
            [
                ("chip_id", AtomicType("str")),
                ("revision", AtomicType("int")),
                ("modules", SetType(module)),
            ]
        ),
        segment="seg_design",
    )


def build_design_database(
    n_chips: int = 2,
    modules_per_chip: int = 3,
    cells_per_module: int = 3,
    gates_per_cell: int = 4,
    shared_library: bool = False,
    n_stdcells: int = 5,
    seed: Optional[int] = 23,
) -> Tuple[Database, Catalog]:
    """Create and populate the design database (optionally non-disjoint)."""
    database = Database("db1")
    catalog = Catalog(database)
    schemas = [chips_schema(shared_library=shared_library)]
    if shared_library:
        schemas.insert(0, stdcells_schema())
    database.create_relations(schemas)
    rng = random.Random(seed)

    std_refs = []
    if shared_library:
        functions = ["nand2", "nor2", "inv", "dff", "mux2", "xor2"]
        for index in range(1, n_stdcells + 1):
            obj = database.insert(
                "stdcells",
                make_tuple(
                    std_id="sc%d" % index,
                    function=functions[(index - 1) % len(functions)],
                    area=float(index),
                ),
            )
            std_refs.append(obj.reference())

    kinds = ["alu", "fpu", "cache", "decoder", "io"]
    gate_kinds = ["nand", "nor", "inv", "xor"]
    for chip_index in range(1, n_chips + 1):
        modules = []
        for mod_index in range(1, modules_per_chip + 1):
            cells = []
            for cell_index in range(1, cells_per_module + 1):
                gates = make_set(
                    *(
                        make_tuple(
                            gate_id=gate_index,
                            kind=gate_kinds[gate_index % len(gate_kinds)],
                            fanin=1 + gate_index % 4,
                        )
                        for gate_index in range(1, gates_per_cell + 1)
                    )
                )
                attrs = dict(
                    cell_id="cell_%d_%d_%d" % (chip_index, mod_index, cell_index),
                    placed=bool(cell_index % 2),
                    gates=gates,
                )
                if shared_library:
                    attrs["std"] = rng.choice(std_refs)
                cells.append(make_tuple(**attrs))
            modules.append(
                make_tuple(
                    mod_id="mod_%d_%d" % (chip_index, mod_index),
                    kind=kinds[(mod_index - 1) % len(kinds)],
                    cells=make_set(*cells),
                )
            )
        database.insert(
            "chips",
            make_tuple(
                chip_id="chip%d" % chip_index,
                revision=1,
                modules=make_set(*modules),
            ),
        )
    return database, catalog
