"""The paper's running example: manufacturing cells and effectors (Figure 1).

"The relation 'cells' models a manufacturing cell which contains different
cell-objects.  These cell-objects can be manufactured by some robots. ...
The effectors (tools) which may be used by robots are stored within the
relation 'effectors', which in turn represents a library of effectors.
One effector may be used (shared) by different robots."

:func:`cells_schema` builds the two relation schemas exactly as drawn in
Figure 1; :func:`build_cells_database` populates them, either with the
precise instance of Figures 6/7 (``figure7=True``) or with a parameterized
synthetic instance for the benchmarks (numbers of cells, c_objects,
robots, effectors, and the degree of sharing).
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.catalog import Catalog
from repro.nf2 import (
    AtomicType,
    Database,
    ListType,
    RefType,
    RelationSchema,
    SetType,
    TupleType,
    make_list,
    make_set,
    make_tuple,
)

#: The three example queries of Figure 3 (SQL-extension syntax).
Q1 = (
    "SELECT o FROM c IN cells, o IN c.c_objects "
    "WHERE c.cell_id = 'c1' FOR READ"
)
Q2 = (
    "SELECT r FROM c IN cells, r IN c.robots "
    "WHERE c.cell_id = 'c1' AND r.robot_id = 'r1' FOR UPDATE"
)
Q3 = (
    "SELECT r FROM c IN cells, r IN c.robots "
    "WHERE c.cell_id = 'c1' AND r.robot_id = 'r2' FOR UPDATE"
)


def effectors_schema() -> RelationSchema:
    """Relation "effectors": eff_id (key) and tool description."""
    return RelationSchema(
        "effectors",
        TupleType(
            [
                ("eff_id", AtomicType("str")),
                ("tool", AtomicType("str")),
            ]
        ),
        segment="seg2",
    )


def cells_schema() -> RelationSchema:
    """Relation "cells" exactly as in Figure 1.

    cell_id (str, key); c_objects: set of tuples (obj_id int, obj_name
    str); robots: list (ordered by robot_id) of tuples (robot_id str,
    trajectory str, effectors: set of references into "effectors").
    """
    return RelationSchema(
        "cells",
        TupleType(
            [
                ("cell_id", AtomicType("str")),
                (
                    "c_objects",
                    SetType(
                        TupleType(
                            [
                                ("obj_id", AtomicType("int")),
                                ("obj_name", AtomicType("str")),
                            ]
                        )
                    ),
                ),
                (
                    "robots",
                    ListType(
                        TupleType(
                            [
                                ("robot_id", AtomicType("str")),
                                ("trajectory", AtomicType("str")),
                                ("effectors", SetType(RefType("effectors"))),
                            ]
                        )
                    ),
                ),
            ]
        ),
        segment="seg1",
    )


def build_cells_database(
    n_cells: int = 1,
    n_objects: int = 3,
    n_robots: int = 2,
    n_effectors: int = 3,
    refs_per_robot: int = 2,
    seed: Optional[int] = 7,
    figure7: bool = False,
) -> Tuple[Database, Catalog]:
    """Create and populate the cells/effectors database.

    With ``figure7=True`` the exact instance of Figures 6/7 is built:
    cell c1 with c_object o1, robots r1 (→ e1, e2) and r2 (→ e2, e3), and
    effectors e1..e3 — the other parameters are ignored.

    Otherwise a synthetic database is generated: ``n_cells`` cells named
    ``c1..``, each with ``n_objects`` c_objects and ``n_robots`` robots;
    ``n_effectors`` effectors named ``e1..``; every robot references
    ``refs_per_robot`` effectors drawn (seeded) from the library, so the
    expected sharing degree of an effector is
    ``n_cells * n_robots * refs_per_robot / n_effectors``.
    """
    database = Database("db1")
    catalog = Catalog(database)
    database.create_relations([effectors_schema(), cells_schema()])

    if figure7:
        refs = {}
        for eff_id, tool in (("e1", "t1"), ("e2", "t2"), ("e3", "t3")):
            obj = database.insert(
                "effectors", make_tuple(eff_id=eff_id, tool=tool)
            )
            refs[eff_id] = obj.reference()
        database.insert(
            "cells",
            make_tuple(
                cell_id="c1",
                c_objects=make_set(make_tuple(obj_id=1, obj_name="on1")),
                robots=make_list(
                    make_tuple(
                        robot_id="r1",
                        trajectory="tr1",
                        effectors=make_set(refs["e1"], refs["e2"]),
                    ),
                    make_tuple(
                        robot_id="r2",
                        trajectory="tr2",
                        effectors=make_set(refs["e2"], refs["e3"]),
                    ),
                ),
            ),
        )
        return database, catalog

    rng = random.Random(seed)
    effector_refs = []
    for index in range(1, n_effectors + 1):
        obj = database.insert(
            "effectors",
            make_tuple(eff_id="e%d" % index, tool="tool-%d" % index),
        )
        effector_refs.append(obj.reference())

    for cell_index in range(1, n_cells + 1):
        c_objects = make_set(
            *(
                make_tuple(obj_id=obj_index, obj_name="obj-%d-%d" % (cell_index, obj_index))
                for obj_index in range(1, n_objects + 1)
            )
        )
        robots = []
        for robot_index in range(1, n_robots + 1):
            count = min(refs_per_robot, len(effector_refs))
            chosen = rng.sample(effector_refs, count) if count else []
            robots.append(
                make_tuple(
                    robot_id="r%d_%d" % (cell_index, robot_index),
                    trajectory="tr-%d-%d" % (cell_index, robot_index),
                    effectors=make_set(*chosen),
                )
            )
        database.insert(
            "cells",
            make_tuple(
                cell_id="c%d" % cell_index,
                c_objects=c_objects,
                robots=make_list(*robots),
            ),
        )
    return database, catalog


def robot_ids(database: Database, cell_key: str) -> List[str]:
    """Robot ids of one cell (workload helpers)."""
    cell = database.get("cells", cell_key)
    return [robot["robot_id"] for robot in cell.root["robots"]]


def effector_keys(database: Database) -> List[str]:
    return sorted(obj.key for obj in database.relation("effectors"))
