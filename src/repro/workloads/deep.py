"""Depth-parameterized workload: nested containers of arbitrary depth.

The paper's closing claim starts with "the **deeper** complex objects are
structured ... the higher the benefit of the proposed technique promises
to be."  The cells schema has fixed depth, so this workload provides a
relation whose objects nest ``depth`` container levels::

    containers(cont_id, children: set of (n0_id, children: set of (...)))

with ``fanout`` elements per level, plus helpers to address random
leaf-level components — the fine granules a deep-structure workload
touches.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.catalog import Catalog
from repro.graphs.units import component_resource, object_resource
from repro.nf2 import (
    AtomicType,
    Database,
    RelationSchema,
    SetType,
    TupleType,
    make_set,
    make_tuple,
)
from repro.nf2.paths import AttrStep, ElemStep


def deep_schema(depth: int) -> RelationSchema:
    """``depth`` nested set-of-tuple levels below the object node."""
    if depth < 1:
        raise ValueError("depth must be >= 1")
    inner = TupleType(
        [("leaf_id", AtomicType("int")), ("payload", AtomicType("str"))]
    )
    for level in range(depth - 1):
        inner = TupleType(
            [
                ("n%d_id" % level, AtomicType("int")),
                ("children", SetType(inner)),
            ]
        )
    return RelationSchema(
        "containers",
        TupleType(
            [("cont_id", AtomicType("str")), ("children", SetType(inner))]
        ),
    )


def _element_for(levels: int, fanout: int, index: int):
    """Instance element spanning ``levels`` levels down to the leaves.

    Mirrors :func:`deep_schema`'s naming: the element ``levels`` levels
    above the leaf carries key attribute ``n<levels-2>_id``.
    """
    if levels == 1:
        return make_tuple(leaf_id=index, payload="leaf-%d" % index)
    children = make_set(
        *(
            _element_for(levels - 1, fanout, child)
            for child in range(1, fanout + 1)
        )
    )
    return make_tuple(**{"n%d_id" % (levels - 2): index, "children": children})


def build_deep_database(
    n_objects: int = 2, depth: int = 3, fanout: int = 3
) -> Tuple[Database, Catalog]:
    """Create ``n_objects`` containers of the given depth and fan-out."""
    database = Database("db1")
    catalog = Catalog(database)
    database.create_relation(deep_schema(depth))
    for index in range(1, n_objects + 1):
        children = make_set(
            *(
                _element_for(depth, fanout, child)
                for child in range(1, fanout + 1)
            )
        )
        database.insert(
            "containers", make_tuple(cont_id="o%d" % index, children=children)
        )
    return database, catalog


def random_component(
    catalog, depth: int, fanout: int, rng: random.Random, object_key=None
):
    """Resource of one random component at the deepest tuple level."""
    relation = catalog.database.relation("containers")
    if object_key is None:
        object_key = rng.choice(sorted(obj.key for obj in relation))
    steps: List = []
    for level in range(depth - 1):
        steps.append(AttrStep("children"))
        steps.append(ElemStep(rng.randint(1, fanout)))
    obj_res = object_resource(catalog, "containers", object_key)
    return component_resource(obj_res, steps)
