"""Invariant auditing of a live lock state.

``audit(protocol)`` inspects the lock table and the database and reports
every violation of the invariants the paper's correctness rests on:

1. **compatibility** — concurrently granted modes on one resource are
   pairwise compatible (the lock table's core guarantee);
2. **intention chains** — a transaction holding any lock on a non-root
   resource holds at least the matching intention mode on every ancestor
   *within the same unit and superunit path* (rules 1-4);
3. **entry-point visibility** — a transaction holding S/X on a node whose
   subtree references common data also holds a lock on every reachable
   entry point (the downward-propagation obligation; its absence is
   exactly the from-the-side hazard of section 3.2.2);
4. **waiting consistency** — no waiting request could actually be granted
   (no lost wakeups);
5. **dense-state consistency** — when the manager runs the dense-ID fast
   path, the interner must stay bijective and the int-keyed held-mode
   summary must mirror the authoritative object-keyed one exactly.

The auditor is intentionally protocol-agnostic: run it against a baseline
(e.g. ``NaiveDAGUnsafeProtocol``) and it *finds* the paper's problem —
see ``tests/integration/test_verify.py``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.graphs.units import (
    UnitMap,
    ancestors,
    object_resource,
    relation_resource,
)
from repro.locking.modes import S, SIX, X, compatible, covers, intention_of
from repro.nf2.refindex import reference_resource_parts
from repro.nf2.values import collect_references


class Violation:
    """One audit finding."""

    __slots__ = ("rule", "txn", "resource", "detail")

    def __init__(self, rule, txn, resource, detail):
        self.rule = rule
        self.txn = txn
        self.resource = resource
        self.detail = detail

    def __repr__(self):
        return "Violation(%s, txn=%r, resource=%r: %s)" % (
            self.rule,
            self.txn,
            self.resource,
            self.detail,
        )


def audit(protocol) -> List[Violation]:
    """Audit the protocol's lock manager against all invariants."""
    violations: List[Violation] = []
    violations.extend(check_compatibility(protocol.manager))
    violations.extend(check_intention_chains(protocol))
    violations.extend(check_entry_point_visibility(protocol))
    violations.extend(check_waiting_consistency(protocol.manager))
    violations.extend(check_dense_state(protocol.manager))
    violations.extend(check_indexes(protocol.catalog.database))
    violations.extend(
        check_reference_index(protocol.catalog.database, protocol.catalog)
    )
    return violations


#: Rule name -> check callable, for selective per-step auditing.
STEP_CHECKS = {
    "compatibility": lambda protocol: check_compatibility(protocol.manager),
    "intention-chain": lambda protocol: check_intention_chains(protocol),
    "entry-point-visibility": lambda protocol: check_entry_point_visibility(
        protocol
    ),
    "waiting-consistency": lambda protocol: check_waiting_consistency(
        protocol.manager
    ),
    "dense-state": lambda protocol: check_dense_state(protocol.manager),
    "index-consistency": lambda protocol: check_indexes(
        protocol.catalog.database
    ),
    "reference-index": lambda protocol: check_reference_index(
        protocol.catalog.database, protocol.catalog
    ),
}


def audit_step(protocol, rules=("compatibility", "waiting-consistency")):
    """Selective audit for after-every-step use (schedule exploration).

    The full :func:`audit` rescans indexes and the reference index, which
    is wasteful thousands of times per exploration; callers pick exactly
    the rules their protocol is obliged to satisfy.  Unknown rule names
    raise ``KeyError`` rather than silently checking nothing.
    """
    violations: List[Violation] = []
    for rule in rules:
        violations.extend(STEP_CHECKS[rule](protocol))
    return violations


def check_indexes(database) -> List[Violation]:
    """Every index must agree exactly with its relation's contents.

    5. **index consistency** — for each indexed attribute, the index maps
       value v to surrogate s iff the stored object s carries v; no
       dangling and no missing entries (maintenance must be atomic with
       the data change, including undo paths).
    """
    out: List[Violation] = []
    for relation in database.relations():
        for attribute, index in relation.indexes.items():
            expected = {}
            for obj in relation:
                expected.setdefault(obj.root[attribute], []).append(obj.surrogate)
            actual = {value: sorted(index.lookup(value)) for value in index.values()}
            expected = {value: sorted(s) for value, s in expected.items()}
            if actual != expected:
                missing = {
                    value: s for value, s in expected.items()
                    if actual.get(value) != s
                }
                stale = {
                    value: s for value, s in actual.items()
                    if expected.get(value) != s
                }
                out.append(
                    Violation(
                        "index-consistency",
                        None,
                        (relation.name, attribute),
                        "missing=%r stale=%r" % (missing, stale),
                    )
                )
    return out


def check_reference_index(database, catalog) -> List[Violation]:
    """The incremental reference index must agree with a fresh scan.

    6. **reference-index consistency** — for every relation and object
       resource, and for both transitive settings, the index-backed
       ``entry_points_below`` equals the naive instance-subtree scan
       exactly (order included); every object's cached direct reference
       list equals a fresh tree walk; and the reverse-edge occurrence
       counts match a full recount.
    """
    out: List[Violation] = []
    units = UnitMap(catalog)
    index = database.reference_index
    expected_counts: Dict[Tuple[str, str], int] = {}
    for relation in database.relations():
        resources = [
            relation_resource(database.name, relation.segment, relation.name)
        ]
        for obj in relation:
            resources.append(object_resource(catalog, relation.name, obj.key))
            fresh = tuple(
                reference_resource_parts(obj.root, relation.schema.object_type)
            )
            cached = index._direct.get((relation.name, obj.surrogate), ())
            if cached != fresh:
                out.append(
                    Violation(
                        "reference-index",
                        None,
                        (relation.name, str(obj.key)),
                        "stale direct entries: cached=%r fresh=%r"
                        % (cached, fresh),
                    )
                )
            for ref in collect_references(obj.root):
                target = (ref.relation, ref.surrogate)
                expected_counts[target] = expected_counts.get(target, 0) + 1
        for resource in resources:
            for transitive in (False, True):
                fast = units.entry_points_below(
                    resource, transitive=transitive, naive=False
                )
                naive = units.entry_points_below(
                    resource, transitive=transitive, naive=True
                )
                if fast != naive:
                    out.append(
                        Violation(
                            "reference-index",
                            None,
                            resource,
                            "entry points diverge (transitive=%s): "
                            "index=%r scan=%r" % (transitive, fast, naive),
                        )
                    )
    actual_counts = {
        target: sum(sources.values())
        for target, sources in index._referencing.items()
    }
    if actual_counts != expected_counts:
        out.append(
            Violation(
                "reference-index",
                None,
                None,
                "reverse-edge counts diverge: index=%r recount=%r"
                % (actual_counts, expected_counts),
            )
        )
    return out


def check_compatibility(manager) -> List[Violation]:
    out = []
    for resource in manager.table.locked_resources():
        holders = list(manager.holders(resource).items())
        for i, (txn_a, mode_a) in enumerate(holders):
            for txn_b, mode_b in holders[i + 1 :]:
                if not compatible(mode_a, mode_b):
                    out.append(
                        Violation(
                            "compatibility",
                            (txn_a, txn_b),
                            resource,
                            "%s and %s granted concurrently" % (mode_a, mode_b),
                        )
                    )
    return out


def check_intention_chains(protocol) -> List[Violation]:
    """Every held lock needs intention cover on its in-unit ancestors."""
    out = []
    manager = protocol.manager
    units = protocol.units
    for resource in manager.table.locked_resources():
        for txn, mode in manager.holders(resource).items():
            required = intention_of(mode)
            unit_root = units.unit_root(resource)
            for ancestor in ancestors(resource):
                # within the unit, plus the superunit path of inner units:
                # for outer-unit members that is every prefix anyway
                held = manager.held_mode(txn, ancestor)
                if held is not None and covers(held, required):
                    continue
                # an ancestor covered *implicitly* by a coarse lock higher
                # up is fine too (S/X imply the whole subtree)
                if protocol.effectively_holds(txn, ancestor, S) or (
                    protocol.effectively_holds(txn, ancestor, X)
                ):
                    continue
                out.append(
                    Violation(
                        "intention-chain",
                        txn,
                        resource,
                        "ancestor %r lacks (at least) %s" % (ancestor, required),
                    )
                )
    return out


def check_entry_point_visibility(protocol) -> List[Violation]:
    """S/X holders must have locked every reachable entry point.

    Semantic actual modes (SI/AP/INC) implicitly claim their operation
    class over the subtree exactly as S claims reads, so they carry the
    same downward-propagation obligation.
    """
    out = []
    manager = protocol.manager
    units = protocol.units
    for resource in manager.table.locked_resources():
        if len(resource) < 3:
            continue
        for txn, mode in manager.holders(resource).items():
            if mode not in (S, SIX, X) and not (
                mode.is_semantic and not mode.is_intention
            ):
                continue
            try:
                entries = units.entry_points_below(resource, transitive=True)
            except Exception:
                continue
            for entry in entries:
                held = manager.held_mode(txn, entry)
                if held is None:
                    out.append(
                        Violation(
                            "entry-point-visibility",
                            txn,
                            resource,
                            "holds %s but no lock on reachable entry point %r"
                            % (mode, entry),
                        )
                    )
    return out


def check_dense_state(manager) -> List[Violation]:
    """Dense mirror audit: interner bijectivity, summary agreement.

    A no-op for the plain object-path table.  On a dense table the
    object-keyed structures are authoritative; this check proves the
    int-keyed shadow state has not drifted: every interned id maps back
    to the resource that produced it, and the per-transaction code
    summary agrees entry-for-entry with the object-keyed mode summary.
    """
    out: List[Violation] = []
    table = manager.table
    interner = getattr(table, "interner", None)
    if interner is None:
        return out
    for rid, resource in interner.items():
        back = interner.resource_of(rid)
        if back != resource:
            out.append(
                Violation(
                    "dense-state",
                    None,
                    resource,
                    "interner not bijective: id %d maps back to %r"
                    % (rid, back),
                )
            )
    for txn, modes_by_resource in table._txn_modes.items():
        codes = table.dense_summary(txn) or {}
        expected = {}
        for resource, mode in modes_by_resource.items():
            rid = interner.id_of(resource)
            if rid is None:
                out.append(
                    Violation(
                        "dense-state",
                        txn,
                        resource,
                        "held resource was never interned",
                    )
                )
                continue
            expected[rid] = mode.code
        if expected != codes:
            out.append(
                Violation(
                    "dense-state",
                    txn,
                    None,
                    "dense summary diverges from object summary: "
                    "dense=%r expected=%r" % (codes, expected),
                )
            )
    for txn in getattr(table, "_txn_codes", {}):
        if txn not in table._txn_modes:
            out.append(
                Violation(
                    "dense-state",
                    txn,
                    None,
                    "dense summary has entries for a transaction with no "
                    "object summary",
                )
            )
    return out


def check_waiting_consistency(manager) -> List[Violation]:
    """No waiting request may be grantable (lost-wakeup detector)."""
    out = []
    table = manager.table
    for resource, entry in list(table._entries.items()):
        for request in list(entry.queue):
            if entry.conversions or entry.queue[0] is not request:
                continue  # FIFO: only the head could be grantable
            grantable = all(
                compatible(held.mode, request.target_mode)
                for txn, held in entry.granted.items()
                if txn != request.txn
            )
            if grantable:
                out.append(
                    Violation(
                        "waiting-consistency",
                        request.txn,
                        resource,
                        "head waiter for %s is grantable but still queued"
                        % request.target_mode,
                    )
                )
    return out
