"""Database, segments and relations: the storage substrate.

The lockable-unit hierarchy of the paper starts at *database* and descends
through *segment*, *relation* and *complex object* into the object
structure (Figures 2 and 5).  This module provides those containers plus
the instance operations the protocols and workloads need:

* insert/get/update/delete of complex objects with schema validation,
* surrogate-based reference resolution (``dereference``),
* the **reverse-reference scan** used by the naive DAG baseline: finding
  every object that references a given common-data object *without*
  backward pointers (the paper rules those out for maintenance reasons,
  section 3.2.2) — the scan's cost is surfaced via ``scan_cost`` so the
  benchmarks can report it.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Tuple

from repro.errors import IntegrityError, SchemaError
from repro.nf2.paths import resolve_type, resolve_value
from repro.nf2.refindex import ReferenceIndex
from repro.nf2.schema import RelationSchema, check_schema_closure
from repro.nf2.surrogate import SurrogateGenerator
from repro.nf2.values import (
    ComplexObject,
    ListValue,
    Reference,
    SetValue,
    TupleValue,
)


class Relation:
    """A stored relation: complex objects indexed by surrogate and by key."""

    def __init__(self, schema: RelationSchema, database: "Database"):
        self.schema = schema
        self.database = database
        self._by_surrogate: Dict[str, ComplexObject] = {}
        self._by_key: Dict[object, ComplexObject] = {}
        #: secondary indexes by attribute name (see Database.create_index)
        self.indexes: Dict[str, "Index"] = {}

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def segment(self) -> str:
        return self.schema.segment

    def __len__(self):
        return len(self._by_surrogate)

    def __iter__(self) -> Iterator[ComplexObject]:
        return iter(list(self._by_surrogate.values()))

    def insert(self, root: TupleValue) -> ComplexObject:
        """Validate and store a new complex object; returns it with surrogate."""
        self.schema.object_type.validate(root, resolver=self.database._resolves)
        key = root[self.schema.key]
        if key in self._by_key:
            raise IntegrityError(
                "relation %r already holds an object with key %r"
                % (self.name, key)
            )
        surrogate = self.database._surrogates.next_for(self.name)
        obj = ComplexObject(self.name, surrogate, key, root)
        for attribute, index in self.indexes.items():
            index.add(root[attribute], surrogate)
        self._by_surrogate[surrogate] = obj
        self._by_key[key] = obj
        self.database.reference_index.index_object(self, obj)
        self.database.structure_version += 1
        return obj

    def get(self, key) -> ComplexObject:
        """Look up a complex object by key attribute value."""
        try:
            return self._by_key[key]
        except KeyError:
            raise IntegrityError(
                "relation %r has no object with key %r" % (self.name, key)
            )

    def get_by_surrogate(self, surrogate: str) -> ComplexObject:
        try:
            return self._by_surrogate[surrogate]
        except KeyError:
            raise IntegrityError(
                "relation %r has no object with surrogate %r"
                % (self.name, surrogate)
            )

    def contains_key(self, key) -> bool:
        return key in self._by_key

    def contains_surrogate(self, surrogate: str) -> bool:
        return surrogate in self._by_surrogate

    def delete(self, key, force: bool = False) -> ComplexObject:
        """Delete the object with ``key``.

        Unless ``force`` is set, deletion of an object that is still
        referenced from elsewhere in the database raises
        :class:`IntegrityError` (dangling references would otherwise break
        the non-disjoint structure the lock protocol relies on).
        """
        obj = self.get(key)
        if not force:
            # Referential-integrity check: the reverse-reference index
            # answers "who references me?" in O(1); the full database scan
            # remains only as the naive-baseline ablation.
            if self.database.use_reference_index:
                referencing = self.database.reference_index.referencing_objects(
                    obj.reference()
                )
            else:
                referencing = self.database.scan_referencing(obj.reference())
            if referencing:
                raise IntegrityError(
                    "object %r of relation %r is still referenced by %d "
                    "object(s); delete the references first or use force=True"
                    % (key, self.name, len(referencing))
                )
        for attribute, index in self.indexes.items():
            index.remove(obj.root[attribute], obj.surrogate)
        del self._by_surrogate[obj.surrogate]
        del self._by_key[obj.key]
        self.database.reference_index.forget_object(self, obj)
        self.database.structure_version += 1
        return obj

    def replace(self, obj: ComplexObject):
        """Replace a stored object's data tree (used by undo/check-in).

        The replacement is validated against the schema and must keep the
        same surrogate; the key attribute may change.
        """
        if obj.surrogate not in self._by_surrogate:
            raise IntegrityError(
                "relation %r has no object with surrogate %r"
                % (self.name, obj.surrogate)
            )
        self.schema.object_type.validate(obj.root, resolver=self.database._resolves)
        stored = self._by_surrogate[obj.surrogate]
        new_key = obj.root[self.schema.key]
        key_changed = new_key != stored.key
        if key_changed:
            if new_key in self._by_key:
                raise IntegrityError(
                    "key %r already present in relation %r" % (new_key, self.name)
                )
            del self._by_key[stored.key]
            self._by_key[new_key] = stored
            stored.key = new_key
        for attribute, index in self.indexes.items():
            old_value = stored.root[attribute]
            new_value = obj.root[attribute]
            if old_value != new_value:
                index.remove(old_value, stored.surrogate)
                index.add(new_value, stored.surrogate)
        stored.root = obj.root
        # A key change renames the entry-point resource of this object, so
        # the reference index must invalidate even if references stand.
        self.database.reference_index.refresh_object(
            self, stored, key_changed=key_changed
        )
        self.database.structure_version += 1

    def restore(self, snapshot: ComplexObject) -> ComplexObject:
        """Re-insert a previously deleted object under its *original* surrogate.

        Undo of a delete must restore identity, not just content: references
        elsewhere in the database (including ones re-added by later undo
        actions of the same rollback) name the object by surrogate, so a
        fresh surrogate from :meth:`insert` would leave them dangling.
        """
        self.schema.object_type.validate(
            snapshot.root, resolver=self.database._resolves
        )
        key = snapshot.root[self.schema.key]
        if key in self._by_key:
            raise IntegrityError(
                "relation %r already holds an object with key %r"
                % (self.name, key)
            )
        if snapshot.surrogate in self._by_surrogate:
            raise IntegrityError(
                "relation %r already holds surrogate %r"
                % (self.name, snapshot.surrogate)
            )
        obj = ComplexObject(self.name, snapshot.surrogate, key, snapshot.root)
        for attribute, index in self.indexes.items():
            index.add(obj.root[attribute], obj.surrogate)
        self._by_surrogate[obj.surrogate] = obj
        self._by_key[key] = obj
        self.database.reference_index.index_object(self, obj)
        self.database.structure_version += 1
        return obj

    def resolve(self, obj: ComplexObject, steps):
        """Resolve an instance path within ``obj`` (see repro.nf2.paths)."""
        return resolve_value(obj.root, self.schema.object_type, steps)

    def resolve_type(self, steps):
        """Resolve a schema path against this relation's object type."""
        return resolve_type(self.schema.object_type, steps)


class Database:
    """A database: named segments containing complex-object relations."""

    def __init__(self, name: str = "db1"):
        self.name = name
        self._relations: Dict[str, Relation] = {}
        self._pending_schemas: Dict[str, RelationSchema] = {}
        self._surrogates = SurrogateGenerator()
        #: number of objects visited by reverse-reference scans (benchmarks
        #: read and reset this to quantify the naive baseline's overhead).
        self.scan_cost = 0
        #: subtree walks performed by *naive* downward-propagation scans
        #: (UnitMap.entry_points_below without the index); the cached path
        #: counts dictionary lookups on ``reference_index`` instead.
        self.ref_scan_ops = 0
        #: incremental reverse-reference / entry-point index (see
        #: :mod:`repro.nf2.refindex`); ``use_reference_index`` is the
        #: ablation flag restoring every naive scan for benchmarks.
        self.reference_index = ReferenceIndex(self)
        self.use_reference_index = True
        #: optional hooks fired on relation creation (catalog integration)
        self._creation_hooks: List[Callable[[Relation], None]] = []
        #: coarse object-graph/schema version: bumped by every structural
        #: mutation (insert/delete/replace/restore, component writes via
        #: ``notify_object_changed`` — which undo and check-in also run
        #: through — and relation/index creation).  Compiled lock plans
        #: are stamped with this counter; see repro.locking.plancache.
        self.structure_version = 0

    # -- schema management -------------------------------------------------

    def create_relation(self, schema: RelationSchema) -> Relation:
        """Create one relation; its referenced relations must already exist.

        For mutually unordered creation use :meth:`create_relations`.
        """
        return self.create_relations([schema])[0]

    def create_relations(self, schemas) -> List[Relation]:
        """Create several relations atomically, validating schema closure."""
        schemas = list(schemas)
        all_schemas = {rel.schema.name: rel.schema for rel in self._relations.values()}
        for schema in schemas:
            if schema.name in all_schemas or schema.name in self._pending_schemas:
                raise SchemaError("relation %r already exists" % schema.name)
            all_schemas[schema.name] = schema
        check_schema_closure(all_schemas.values())
        created = []
        for schema in schemas:
            relation = Relation(schema, self)
            self._relations[schema.name] = relation
            created.append(relation)
        for relation in created:
            for hook in self._creation_hooks:
                hook(relation)
        self.structure_version += 1
        return created

    def on_relation_created(self, hook: Callable[[Relation], None]):
        """Register a hook invoked for every newly created relation."""
        self._creation_hooks.append(hook)

    def create_index(
        self, relation_name: str, attribute: str, unique: bool = False
    ):
        """Create (and backfill) a secondary index on a top-level atomic
        attribute — an additional lockable unit beside the relation, as in
        Figure 2's System R graph."""
        from repro.nf2.index import Index, validate_indexable

        relation = self.relation(relation_name)
        validate_indexable(relation.schema, attribute)
        if attribute in relation.indexes:
            raise SchemaError(
                "relation %r already has an index on %r"
                % (relation_name, attribute)
            )
        index = Index(relation_name, attribute, unique=unique)
        for obj in relation:
            index.add(obj.root[attribute], obj.surrogate)
        relation.indexes[attribute] = index
        self.structure_version += 1
        return index

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError("no relation named %r" % name)

    def relations(self) -> List[Relation]:
        return list(self._relations.values())

    def segments(self) -> List[str]:
        """Segment names in first-seen order."""
        seen = []
        for relation in self._relations.values():
            if relation.segment not in seen:
                seen.append(relation.segment)
        return seen

    # -- instance operations ------------------------------------------------

    def insert(self, relation_name: str, root: TupleValue) -> ComplexObject:
        return self.relation(relation_name).insert(root)

    def get(self, relation_name: str, key) -> ComplexObject:
        return self.relation(relation_name).get(key)

    def dereference(self, ref: Reference) -> ComplexObject:
        """Resolve a reference to its target complex object."""
        return self.relation(ref.relation).get_by_surrogate(ref.surrogate)

    def _resolves(self, relation_name: str, surrogate: str) -> bool:
        """Resolver passed to type validation: does the target exist?"""
        if relation_name not in self._relations:
            return False
        return self._relations[relation_name].contains_surrogate(surrogate)

    # -- reverse-reference scan (naive baseline support) --------------------

    def scan_referencing(
        self, target: Reference
    ) -> List[Tuple[ComplexObject, Tuple]]:
        """Find every (object, path) whose value references ``target``.

        This is the expensive operation the paper describes for the naive
        DAG protocol: "all parent nodes of the requested node must be
        determined" by scanning, because backward pointers are ruled out.
        Each visited object increments :attr:`scan_cost`.
        """
        from repro.nf2.values import reference_paths

        hits = []
        for relation in self._relations.values():
            for obj in relation:
                self.scan_cost += 1
                for ref, steps in reference_paths(obj.root):
                    if ref == target:
                        hits.append((obj, steps))
        return hits

    def reset_scan_cost(self) -> int:
        """Return and clear the accumulated reverse-scan cost."""
        cost, self.scan_cost = self.scan_cost, 0
        return cost

    def reset_ref_scan_ops(self) -> int:
        """Return and clear the naive downward-propagation scan counter."""
        ops, self.ref_scan_ops = self.ref_scan_ops, 0
        return ops

    # -- incremental reference-index maintenance -----------------------------

    def notify_object_changed(self, relation_name: str, surrogate: str):
        """Tell the reference index one object's tree was mutated in place.

        Called by the transaction manager after component writes (and by
        their undo actions): the object is re-scanned incrementally; memoized
        closures are invalidated only when its reference list changed.
        """
        relation = self._relations.get(relation_name)
        if relation is None:
            return
        obj = relation._by_surrogate.get(surrogate)
        if obj is None:
            return
        self.structure_version += 1
        self.reference_index.refresh_object(relation, obj)

    # -- statistics -----------------------------------------------------------

    def object_count(self) -> int:
        return sum(len(relation) for relation in self._relations.values())

    def __repr__(self):
        return "Database(%r, relations=%r)" % (
            self.name,
            sorted(self._relations),
        )


def make_tuple(**attributes) -> TupleValue:
    """Convenience constructor mirroring the examples in the paper."""
    return TupleValue(**attributes)


def make_set(*elements) -> SetValue:
    return SetValue(elements)


def make_list(*elements) -> ListValue:
    return ListValue(elements)
