"""Surrogate generation in the style of Meier/Lorie (MeLo83).

The paper implements references to common data "e.g. under use of key
values, surrogates [MeLo83], etc." (footnote 1).  We use surrogates: small
immutable identifiers that are unique per database, never reused, and
independent of the object's key values (so keys may change without breaking
references).
"""

from __future__ import annotations

import itertools


class SurrogateGenerator:
    """Produces database-wide unique surrogates.

    Surrogates are strings ``"@<relation>:<n>"`` so that debugging output
    stays readable; their structure is an implementation detail callers must
    not rely on.  The counter is global per generator, guaranteeing
    uniqueness across relations even though the relation name is embedded.
    """

    def __init__(self):
        self._counter = itertools.count(1)

    def next_for(self, relation_name: str) -> str:
        """Return a fresh surrogate for an object of ``relation_name``."""
        return "@%s:%d" % (relation_name, next(self._counter))

    def fork_state(self) -> int:
        """Expose the current counter position (for persistence tests)."""
        # Peek without consuming: count objects cannot be peeked, so track
        # by issuing and remembering would skip a value; instead re-create.
        value = next(self._counter)
        self._counter = itertools.count(value + 1)
        return value
