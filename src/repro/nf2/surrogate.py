"""Surrogate generation in the style of Meier/Lorie (MeLo83).

The paper implements references to common data "e.g. under use of key
values, surrogates [MeLo83], etc." (footnote 1).  We use surrogates: small
immutable identifiers that are unique per database, never reused, and
independent of the object's key values (so keys may change without breaking
references).
"""

from __future__ import annotations

import itertools


class SurrogateGenerator:
    """Produces database-wide unique surrogates.

    Surrogates are strings ``"@<relation>:<n>"`` so that debugging output
    stays readable; their structure is an implementation detail callers must
    not rely on.  The counter is global per generator, guaranteeing
    uniqueness across relations even though the relation name is embedded.
    """

    def __init__(self):
        self._counter = itertools.count(1)

    def next_for(self, relation_name: str) -> str:
        """Return a fresh surrogate for an object of ``relation_name``."""
        return "@%s:%d" % (relation_name, next(self._counter))

    def fork_state(self) -> int:
        """Expose the current counter position (for persistence tests)."""
        # Peek without consuming: count objects cannot be peeked, so track
        # by issuing and remembering would skip a value; instead re-create.
        value = next(self._counter)
        self._counter = itertools.count(value + 1)
        return value


class ResourceInterner:
    """Bijective map from resources/surrogates to dense integer ids.

    The dense lock path replaces resource tuples (and surrogate strings)
    with small ints so lock plans become flat arrays and the held-mode
    summary becomes an int-keyed dict.  The contract callers rely on:

    * an id, once assigned, is **never reused or reassigned** — the
      mapping only grows, so compiled dense plans stay valid for the
      interner's whole lifetime and round-trip ``intern``/``resource_of``
      is stable across arbitrary insert/delete/replace/undo traffic
      (deleted objects keep their id; a re-inserted object gets a fresh
      surrogate and therefore a fresh resource tuple and a fresh id);
    * ``version`` is bumped exactly on growth, mirroring the database
      structure version the plan-stamp invalidation of the plan cache is
      built on — consumers that snapshot derived state can detect new
      registrations with one int compare.

    Ids are assigned lazily at first touch ("registration time"): the
    dense lock table interns on entry creation and summary writes, the
    protocol interns when densifying a compiled plan.
    """

    __slots__ = ("_ids", "_resources", "version")

    def __init__(self):
        self._ids = {}
        self._resources: list = []
        self.version = 0

    def intern(self, resource) -> int:
        """The dense id of ``resource``, assigning the next one if new."""
        rid = self._ids.get(resource)
        if rid is None:
            rid = len(self._resources)
            self._ids[resource] = rid
            self._resources.append(resource)
            self.version += 1
        return rid

    def intern_many(self, resources) -> list:
        return [self.intern(resource) for resource in resources]

    def id_of(self, resource):
        """The id of ``resource`` or None (never assigns)."""
        return self._ids.get(resource)

    def resource_of(self, rid: int):
        """Inverse lookup; raises IndexError for never-assigned ids."""
        return self._resources[rid]

    def items(self):
        """Iterate ``(rid, resource)`` pairs in assignment order."""
        return enumerate(self._resources)

    def __len__(self) -> int:
        return len(self._resources)

    def __contains__(self, resource) -> bool:
        return resource in self._ids

    def __repr__(self):
        return "ResourceInterner(%d ids, version=%d)" % (
            len(self._resources),
            self.version,
        )
