"""Secondary indexes over top-level atomic attributes.

Figure 2 shows *indexes* as lockable units beside relations in System R's
lock graph, and section 5 lists "the integration of indexes into the
proposed technique" (plus "a solution of the phantom problem") as future
work.  This module provides the substrate for both:

* an :class:`Index` maps an attribute value to the surrogates of the
  objects carrying it, maintained automatically on insert/delete/replace;
* index **entries** are lockable resources of their own (see
  :func:`repro.graphs.units.index_resource`), so an equality lookup can
  S-lock the entry *even when no object matches* — and an inserter of
  that value must X-lock the same entry first.  That conflict is exactly
  equality-predicate phantom protection.

Only top-level atomic (non-reference) attributes are indexable; that is
what the paper's key-lookup queries (Q1-Q3) need.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import IntegrityError, SchemaError


class Index:
    """Value → surrogates mapping for one attribute of one relation."""

    def __init__(self, relation_name: str, attribute: str, unique: bool = False):
        self.relation_name = relation_name
        self.attribute = attribute
        self.unique = unique
        self._entries: Dict[object, List[str]] = {}

    @property
    def name(self) -> str:
        """The lockable unit's name: ``relation#attribute``."""
        return "%s#%s" % (self.relation_name, self.attribute)

    def add(self, value, surrogate: str):
        bucket = self._entries.setdefault(value, [])
        if self.unique and bucket:
            raise IntegrityError(
                "unique index %s already holds value %r" % (self.name, value)
            )
        bucket.append(surrogate)

    def remove(self, value, surrogate: str):
        bucket = self._entries.get(value)
        if not bucket or surrogate not in bucket:
            raise IntegrityError(
                "index %s has no entry %r -> %r" % (self.name, value, surrogate)
            )
        bucket.remove(surrogate)
        if not bucket:
            del self._entries[value]

    def lookup(self, value) -> List[str]:
        """Surrogates of the objects whose attribute equals ``value``."""
        return list(self._entries.get(value, ()))

    def values(self) -> List[object]:
        return sorted(self._entries, key=repr)

    def entry_count(self) -> int:
        return sum(len(bucket) for bucket in self._entries.values())

    def __len__(self):
        return len(self._entries)

    def __repr__(self):
        return "Index(%s, %d values%s)" % (
            self.name,
            len(self._entries),
            ", unique" if self.unique else "",
        )


def validate_indexable(schema, attribute: str):
    """Check that ``attribute`` is a top-level atomic non-ref attribute."""
    try:
        attr_type = schema.object_type.attribute_type(attribute)
    except SchemaError:
        raise SchemaError(
            "relation %r has no attribute %r to index" % (schema.name, attribute)
        )
    if not attr_type.is_atomic() or attr_type.is_reference():
        raise SchemaError(
            "only top-level atomic attributes are indexable, %r is %r"
            % (attribute, attr_type)
        )
    return attr_type
