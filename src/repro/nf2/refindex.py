"""Incremental reverse-reference / entry-point index.

The paper argues that downward propagation is nearly free because
"scanning these references ... does not imply any additional run-time
overhead" (section 4.4.2.1) — the query reads the data anyway.  A lock
*planner*, however, runs before the data access, so the seed reproduction
paid a full instance-subtree scan (plus one transitive dereference walk
per reachable entry point) on **every** S/X demand.

This module makes that scan incremental.  For every stored complex object
the index keeps the ordered list of references its tree contains, each
tagged with the resource-part path of its innermost *addressable*
enclosing node, so

* ``entry_points_below`` on an object or component resource becomes a
  dictionary lookup plus a prefix filter instead of a tree walk,
* the transitive closure ("common data may again contain common data",
  section 2) chases cached per-object reference lists instead of
  dereferencing and re-walking every target subtree, and
* closure results are memoized per resource, keyed on a structure
  version counter.

Invalidation is precise in the sense that matters for the hot path: the
version counter (which clears the memo) is bumped only by writes that can
change reference topology or entry-point naming — inserts, deletes, key
changes, and in-place writes whose re-scan yields a *different* reference
list.  An ``update_component`` on a non-reference path (the common case:
overwriting a trajectory) re-scans one object and leaves every memoized
closure valid.

The index additionally maintains the reverse mapping (who references me?)
so referential-integrity checks on delete stop scanning the database.
The naive scans remain available behind ``Database.use_reference_index``
(ablation flag) and are cross-checked against the index by
``repro.verify.check_reference_index``.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.nf2.types import ListType, SetType, TupleType
from repro.nf2.values import Reference, TupleValue, _Collection

#: (relation name, surrogate) — the identity of one stored complex object.
ObjectKey = Tuple[str, str]


def reference_resource_parts(root, object_type) -> List[Tuple[Tuple, Reference]]:
    """Every reference in ``root`` with the resource-part path holding it.

    Returns ``(parts, ref)`` pairs in tree order (the order
    :func:`repro.nf2.values.collect_references` visits them).  ``parts``
    are the resource parts — below a tuple the attribute name, below a
    collection the stringified element key — of the innermost addressable
    node containing the reference, exactly as
    :func:`repro.graphs.units.component_resource` would spell them.
    References inside unkeyed collection elements carry the collection's
    path (those elements are not addressable as resources).
    """
    out: List[Tuple[Tuple, Reference]] = []

    def walk(node, node_type, parts):
        if isinstance(node, Reference):
            out.append((parts, node))
        elif isinstance(node, TupleValue) and isinstance(node_type, TupleType):
            for name, child in node.items():
                walk(child, node_type.attribute_type(name), parts + (name,))
        elif isinstance(node, _Collection) and isinstance(
            node_type, (SetType, ListType)
        ):
            element_type = node_type.element_type
            keyed = (
                isinstance(element_type, TupleType)
                and element_type.key is not None
            )
            for element in node:
                if keyed and isinstance(element, TupleValue):
                    walk(
                        element,
                        element_type,
                        parts + (str(element[element_type.key]),),
                    )
                else:
                    walk(element, element_type, parts)

    walk(root, object_type, ())
    return out


def object_key_from_part(relation, key_part: str):
    """Map the textual key part of a resource back to the key domain."""
    if relation.contains_key(key_part):
        return key_part
    try:
        as_int = int(key_part)
    except (TypeError, ValueError):
        return key_part
    return as_int if relation.contains_key(as_int) else key_part


class ReferenceIndex:
    """Per-object reference lists, reverse edges, and closure memoization.

    Maintained by :class:`~repro.nf2.database.Relation` mutation hooks
    (insert/delete/replace) plus
    :meth:`~repro.nf2.database.Database.notify_object_changed` for
    in-place component writes.
    """

    def __init__(self, database):
        self._database = database
        #: object -> ordered tuple of (parts, ref)
        self._direct: Dict[ObjectKey, Tuple[Tuple[Tuple, Reference], ...]] = {}
        #: referenced object -> {referencing object -> occurrence count}
        self._referencing: Dict[ObjectKey, Dict[ObjectKey, int]] = {}
        #: bumped whenever reference topology / entry naming may change
        self.version = 0
        #: memoized entry-point closures: (resource, transitive) -> tuple
        self._memo: Dict[Tuple[Tuple, bool], Tuple[Tuple, ...]] = {}
        # counters (benchmarks)
        self.lookups = 0
        self.memo_hits = 0
        self.refreshes = 0
        self.invalidations = 0

    # -- maintenance hooks -------------------------------------------------

    def index_object(self, relation, obj):
        """New object stored: scan once, record, invalidate closures."""
        entries = tuple(
            reference_resource_parts(obj.root, relation.schema.object_type)
        )
        key = (relation.name, obj.surrogate)
        self._direct[key] = entries
        self._link(key, (), entries)
        self._bump()

    def forget_object(self, relation, obj):
        """Object deleted: drop its entries, invalidate closures."""
        key = (relation.name, obj.surrogate)
        old = self._direct.pop(key, ())
        self._link(key, old, ())
        self._bump()

    def refresh_object(self, relation, obj, key_changed: bool = False):
        """Object data changed in place (or replaced): re-scan it.

        The memo survives when the re-scan yields the same reference list
        and the object kept its key — the write did not touch a
        referencing path, so every cached closure is still exact.
        """
        self.refreshes += 1
        key = (relation.name, obj.surrogate)
        entries = tuple(
            reference_resource_parts(obj.root, relation.schema.object_type)
        )
        old = self._direct.get(key, ())
        if entries == old and not key_changed:
            return
        self._direct[key] = entries
        self._link(key, old, entries)
        self._bump()

    def _link(self, source: ObjectKey, old_entries, new_entries):
        """Update the reverse map for one object's entry diff."""
        counts: Dict[ObjectKey, int] = {}
        for _, ref in old_entries:
            target = (ref.relation, ref.surrogate)
            counts[target] = counts.get(target, 0) - 1
        for _, ref in new_entries:
            target = (ref.relation, ref.surrogate)
            counts[target] = counts.get(target, 0) + 1
        for target, delta in counts.items():
            if delta == 0:
                continue
            sources = self._referencing.setdefault(target, {})
            count = sources.get(source, 0) + delta
            if count > 0:
                sources[source] = count
            else:
                sources.pop(source, None)
                if not sources:
                    self._referencing.pop(target, None)

    def _bump(self):
        self.version += 1
        if self._memo:
            self.invalidations += 1
            self._memo.clear()

    # -- queries -----------------------------------------------------------

    def direct_entries(self, relation_name: str, surrogate: str):
        """The cached (parts, ref) list of one object (tree order)."""
        self.lookups += 1
        return self._direct.get((relation_name, surrogate), ())

    def referencing_objects(self, ref: Reference) -> List[ObjectKey]:
        """Objects whose tree references ``ref``'s target (reverse edge)."""
        return list(self._referencing.get((ref.relation, ref.surrogate), ()))

    def reference_count(self, ref: Reference) -> int:
        """Total reference occurrences pointing at ``ref``'s target."""
        return sum(
            self._referencing.get((ref.relation, ref.surrogate), {}).values()
        )

    def entry_points_below(
        self, resource: Tuple, transitive: bool = True
    ) -> List[Tuple]:
        """Entry points reachable via ``resource`` — the fast path.

        Semantics (including result order and duplicate elimination) match
        the naive scan of
        :meth:`repro.graphs.units.UnitMap.entry_points_below`; the only
        divergence is that component paths below an existing object are
        not re-validated against the instance tree (prefix filtering never
        walks it).
        """
        memo_key = (resource, bool(transitive))
        hit = self._memo.get(memo_key)
        if hit is not None:
            self.memo_hits += 1
            return list(hit)
        database = self._database
        relation = database.relation(resource[2])
        if len(resource) == 3:
            pending = deque()
            for obj in relation:
                pending.extend(
                    ref
                    for _, ref in self.direct_entries(
                        relation.name, obj.surrogate
                    )
                )
        else:
            obj = relation.get(object_key_from_part(relation, resource[3]))
            prefix = resource[4:]
            width = len(prefix)
            pending = deque(
                ref
                for parts, ref in self.direct_entries(
                    relation.name, obj.surrogate
                )
                if parts[:width] == prefix
            )
        found: List[Tuple] = []
        found_set = set()
        seen = set()
        db_name = database.name
        while pending:
            ref = pending.popleft()
            if ref in seen:
                continue
            seen.add(ref)
            target = database.dereference(ref)
            target_relation = database.relation(ref.relation)
            entry = (
                db_name,
                target_relation.segment,
                ref.relation,
                str(target.key),
            )
            if entry not in found_set:
                found_set.add(entry)
                found.append(entry)
            if transitive:
                pending.extend(
                    r for _, r in self.direct_entries(ref.relation, ref.surrogate)
                )
        self._memo[memo_key] = tuple(found)
        return found

    # -- diagnostics -------------------------------------------------------

    def reset_counters(self):
        self.lookups = 0
        self.memo_hits = 0
        self.refreshes = 0
        self.invalidations = 0

    def stats(self) -> Dict[str, int]:
        return {
            "version": self.version,
            "objects": len(self._direct),
            "memoized": len(self._memo),
            "lookups": self.lookups,
            "memo_hits": self.memo_hits,
            "refreshes": self.refreshes,
            "invalidations": self.invalidations,
        }
