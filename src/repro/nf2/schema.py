"""Relation schemas of the extended NF² data model.

A :class:`RelationSchema` couples a relation name with the
:class:`~repro.nf2.types.TupleType` of its member complex objects, the
segment the relation is stored in, and the key attribute.  Section 2 of the
paper fixes two structural rules that we validate here:

* references always target *whole relations* of common data, never parts of
  a complex object ("a reference to common data always references a complex
  object of a relation"), and
* complex objects are **non-recursive** — a relation's type tree must not
  reference the relation itself, directly or transitively (recursive
  complex objects are explicitly out of the paper's scope).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.errors import SchemaError
from repro.nf2.types import TupleType, referenced_relations, type_depth


class RelationSchema:
    """Schema of one complex-object relation."""

    def __init__(
        self,
        name: str,
        object_type: TupleType,
        segment: str = "seg1",
        key: Optional[str] = None,
    ):
        if not name:
            raise SchemaError("relation needs a non-empty name")
        if "#" in name:
            # '#' is reserved for index lockable units ("relation#attr")
            raise SchemaError("relation names may not contain '#': %r" % name)
        if not isinstance(object_type, TupleType):
            raise SchemaError(
                "relation %r: object type must be a TupleType, got %r"
                % (name, object_type)
            )
        self.name = name
        self.object_type = (
            object_type
            if key is None
            else TupleType(object_type.attributes, key=key)
        )
        if self.object_type.key is None:
            raise SchemaError(
                "relation %r: object type needs a key attribute "
                "(an attribute ending in '_id' or an explicit key=...)" % name
            )
        self.segment = segment

    @property
    def key(self) -> str:
        return self.object_type.key

    def referenced_relations(self):
        """Names of all common-data relations referenced by this schema."""
        return referenced_relations(self.object_type)

    def depth(self) -> int:
        """Structural depth of the object type tree."""
        return type_depth(self.object_type)

    def __repr__(self):
        return "RelationSchema(%r, segment=%r, key=%r)" % (
            self.name,
            self.segment,
            self.key,
        )


def check_schema_closure(schemas: Iterable[RelationSchema]):
    """Validate a set of relation schemas as a closed, non-recursive database.

    * every referenced relation must exist in the set;
    * the reference graph between relations must be acyclic (non-recursive
      complex objects; a cycle would make objects transitively contain
      objects of their own type).

    Raises :class:`SchemaError` on violation; returns the schemas keyed by
    name on success.
    """
    by_name: Dict[str, RelationSchema] = {}
    for schema in schemas:
        if schema.name in by_name:
            raise SchemaError("duplicate relation name %r" % schema.name)
        by_name[schema.name] = schema

    for schema in by_name.values():
        for target in schema.referenced_relations():
            if target not in by_name:
                raise SchemaError(
                    "relation %r references unknown relation %r"
                    % (schema.name, target)
                )

    # Cycle check over the relation-reference graph (DFS, three colours).
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {name: WHITE for name in by_name}

    def visit(name, trail):
        colour[name] = GREY
        for target in sorted(by_name[name].referenced_relations()):
            if colour[target] == GREY:
                cycle = trail + [name, target]
                raise SchemaError(
                    "recursive complex objects are not supported "
                    "(reference cycle: %s)" % " -> ".join(cycle)
                )
            if colour[target] == WHITE:
                visit(target, trail + [name])
        colour[name] = BLACK

    for name in sorted(by_name):
        if colour[name] == WHITE:
            visit(name, [])
    return by_name
