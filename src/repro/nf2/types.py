"""Attribute types of the extended NF² data model.

The paper (section 1 and 2) bases its discussion on the extended NF² data
model of Pistor/Andersen with an additional *reference* concept:

* attributes may be **atomic** (``str``, ``int``, ``float``, ``bool``),
* **table-valued**: a ``set`` or a ``list`` of values of one element type
  (homogeneously structured values),
* **tuple-valued**: a (complex) tuple composed of attributes of different
  types (heterogeneously structured values),
* or a **reference** to common data — always referencing a whole complex
  object of another relation, never parts of one (the paper's explicit
  assumption in section 2).

These type descriptors are pure schema objects; instance values live in
:mod:`repro.nf2.values`.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from repro.errors import SchemaError

#: Names of the supported atomic domains.
ATOMIC_DOMAINS = ("str", "int", "float", "bool")


class AttributeType:
    """Abstract base of all NF² attribute types."""

    #: short structural tag used by lock-graph derivation rules (section 4.3)
    kind = "abstract"

    def validate(self, value, resolver=None):
        """Check that ``value`` conforms to this type.

        ``resolver`` is an optional callable ``resolver(relation_name,
        surrogate) -> bool`` used by reference types to verify that the
        target object exists.  Raises :class:`SchemaError` on mismatch.
        """
        raise NotImplementedError

    def children(self) -> Iterator[Tuple[str, "AttributeType"]]:
        """Yield ``(name, type)`` pairs of direct structural children."""
        return iter(())

    def is_atomic(self) -> bool:
        return False

    def is_reference(self) -> bool:
        return False

    def __eq__(self, other):
        return type(self) is type(other) and self.__dict__ == other.__dict__

    def __hash__(self):
        return hash((type(self).__name__, repr(self)))


class AtomicType(AttributeType):
    """An atomic attribute: string, integer, float or boolean.

    In the paper's Figure 1 these are the schema-tree leaves labelled
    ``str`` and ``int``.
    """

    kind = "atomic"

    _PYTHON_TYPES = {
        "str": str,
        "int": int,
        "float": (int, float),
        "bool": bool,
    }

    def __init__(self, domain: str):
        if domain not in ATOMIC_DOMAINS:
            raise SchemaError(
                "unknown atomic domain %r (expected one of %s)"
                % (domain, ", ".join(ATOMIC_DOMAINS))
            )
        self.domain = domain

    def validate(self, value, resolver=None):
        expected = self._PYTHON_TYPES[self.domain]
        # bool is a subclass of int; keep the domains disjoint.
        if self.domain in ("int", "float") and isinstance(value, bool):
            raise SchemaError("expected %s, got bool %r" % (self.domain, value))
        if not isinstance(value, expected):
            raise SchemaError(
                "expected atomic %s, got %r of type %s"
                % (self.domain, value, type(value).__name__)
            )

    def is_atomic(self):
        return True

    def __repr__(self):
        return "AtomicType(%r)" % self.domain


class RefType(AttributeType):
    """A reference to a complex object of another ("common data") relation.

    The dashed arrow of Figure 1: ``ref -> effectors``.  The paper leaves
    the implementation of references open (footnote 1); we implement them
    with surrogates (Meier/Lorie) — see :class:`repro.nf2.values.Reference`.
    """

    kind = "ref"

    def __init__(self, target_relation: str):
        if not target_relation:
            raise SchemaError("reference type needs a target relation name")
        self.target_relation = target_relation

    def validate(self, value, resolver=None):
        from repro.nf2.values import Reference

        if not isinstance(value, Reference):
            raise SchemaError(
                "expected Reference to %r, got %r" % (self.target_relation, value)
            )
        if value.relation != self.target_relation:
            raise SchemaError(
                "reference targets relation %r, expected %r"
                % (value.relation, self.target_relation)
            )
        if resolver is not None and not resolver(value.relation, value.surrogate):
            raise SchemaError(
                "dangling reference: no object %r in relation %r"
                % (value.surrogate, value.relation)
            )

    def is_atomic(self):
        # References are leaves of the schema tree (BLUs in the lock graph)
        # even though they point at further structure.
        return True

    def is_reference(self):
        return True

    def __repr__(self):
        return "RefType(%r)" % self.target_relation


class SetType(AttributeType):
    """A set of elements of one common type (homogeneously structured).

    Sets are unordered; element identity is by key (for tuple elements with
    a key attribute) or by value (for atomic elements).
    """

    kind = "set"

    def __init__(self, element_type: AttributeType):
        if not isinstance(element_type, AttributeType):
            raise SchemaError("set element type must be an AttributeType")
        self.element_type = element_type

    def validate(self, value, resolver=None):
        from repro.nf2.values import SetValue

        if not isinstance(value, SetValue):
            raise SchemaError("expected SetValue, got %r" % (value,))
        for element in value:
            self.element_type.validate(element, resolver)

    def children(self):
        yield ("*", self.element_type)

    def __repr__(self):
        return "SetType(%r)" % (self.element_type,)


class ListType(AttributeType):
    """An ordered list of elements of one common type.

    Figure 1's ``robots`` attribute is a list ordered e.g. by ``robot_id``.
    """

    kind = "list"

    def __init__(self, element_type: AttributeType):
        if not isinstance(element_type, AttributeType):
            raise SchemaError("list element type must be an AttributeType")
        self.element_type = element_type

    def validate(self, value, resolver=None):
        from repro.nf2.values import ListValue

        if not isinstance(value, ListValue):
            raise SchemaError("expected ListValue, got %r" % (value,))
        for element in value:
            self.element_type.validate(element, resolver)

    def children(self):
        yield ("*", self.element_type)

    def __repr__(self):
        return "ListType(%r)" % (self.element_type,)


class TupleType(AttributeType):
    """A (complex) tuple: named attributes of possibly different types.

    The heterogeneously structured values of the paper.  Attribute order is
    preserved (it is the order of Figure 1's schema trees) and attribute
    names must be unique.  A name ending in ``_id`` marks the key attribute
    by the paper's convention; this can be overridden via ``key``.
    """

    kind = "tuple"

    def __init__(self, attributes, key: Optional[str] = None):
        names = [name for name, _ in attributes]
        if len(names) != len(set(names)):
            raise SchemaError("duplicate attribute names in tuple type: %r" % names)
        for name, attr_type in attributes:
            if not isinstance(attr_type, AttributeType):
                raise SchemaError(
                    "attribute %r must have an AttributeType, got %r"
                    % (name, attr_type)
                )
        self.attributes = tuple((name, attr_type) for name, attr_type in attributes)
        if key is not None:
            if key not in names:
                raise SchemaError("key attribute %r not among %r" % (key, names))
            self.key = key
        else:
            id_names = [name for name in names if name.endswith("_id")]
            self.key = id_names[0] if id_names else None
        if self.key is not None:
            key_type = dict(self.attributes)[self.key]
            if not key_type.is_atomic() or key_type.is_reference():
                raise SchemaError(
                    "key attribute %r must be atomic, got %r" % (self.key, key_type)
                )

    def validate(self, value, resolver=None):
        from repro.nf2.values import TupleValue

        if not isinstance(value, TupleValue):
            raise SchemaError("expected TupleValue, got %r" % (value,))
        expected = dict(self.attributes)
        if set(value.keys()) != set(expected):
            raise SchemaError(
                "tuple attributes %r do not match schema %r"
                % (sorted(value.keys()), sorted(expected))
            )
        for name, attr_type in self.attributes:
            attr_type.validate(value[name], resolver)

    def children(self):
        return iter(self.attributes)

    def attribute_type(self, name: str) -> AttributeType:
        """Return the type of attribute ``name`` or raise SchemaError."""
        for attr_name, attr_type in self.attributes:
            if attr_name == name:
                return attr_type
        raise SchemaError("tuple type has no attribute %r" % name)

    def __repr__(self):
        return "TupleType(%s)" % ", ".join(
            "%s=%r" % (name, attr_type) for name, attr_type in self.attributes
        )


def referenced_relations(attr_type: AttributeType):
    """Return the set of relation names referenced anywhere below ``attr_type``.

    Used by the schema layer to validate reference targets and by the
    lock-graph builder to find dashed edges.
    """
    found = set()
    stack = [attr_type]
    while stack:
        current = stack.pop()
        if isinstance(current, RefType):
            found.add(current.target_relation)
        for _, child in current.children():
            stack.append(child)
    return found


def type_depth(attr_type: AttributeType) -> int:
    """Structural depth of a type tree (atomic/ref leaves have depth 1)."""
    if attr_type.is_atomic():
        return 1
    return 1 + max(type_depth(child) for _, child in attr_type.children())
