"""Path expressions addressing schema nodes and instance nodes.

Locks are requested on *instance* granules ("cell c1" → "robots" →
"robot r1", Figure 7) while object-specific lock graphs are *schema* level
(Figure 5).  Both are addressed with paths:

* a **schema path** is a sequence of steps descending a relation's type
  tree: attribute steps (``robots``) and one ``*`` element step per
  set/list level (``robots.*``, ``robots.*.trajectory``);
* an **instance path** replaces each ``*`` by the key of a concrete element
  (``robots[r1].trajectory``).

The textual syntax ``attr[key].attr2[key2]...`` is used by tests, examples
and the query layer.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import PathError
from repro.nf2.types import AttributeType, ListType, SetType, TupleType
from repro.nf2.values import ListValue, SetValue, TupleValue


class AttrStep:
    """Descend into a named attribute of a (complex) tuple."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __eq__(self, other):
        return isinstance(other, AttrStep) and self.name == other.name

    def __hash__(self):
        return hash(("attr", self.name))

    def __repr__(self):
        return "AttrStep(%r)" % self.name


class ElemStep:
    """Select the element of a set/list whose key attribute equals ``key``."""

    __slots__ = ("key",)

    def __init__(self, key):
        self.key = key

    def __eq__(self, other):
        return isinstance(other, ElemStep) and self.key == other.key

    def __hash__(self):
        return hash(("elem", self.key))

    def __repr__(self):
        return "ElemStep(%r)" % (self.key,)


#: The schema-level wildcard element step.
STAR = ElemStep("*")


def parse_path(text: str) -> Tuple:
    """Parse ``"robots[r1].trajectory"`` into a tuple of steps.

    ``*`` inside brackets (or a bare ``*`` segment) produces the schema
    wildcard element step.  An empty string yields the empty path (the
    object root itself).
    """
    if not text:
        return ()
    steps = []
    for segment in text.split("."):
        if not segment:
            raise PathError("empty path segment in %r" % text)
        name = segment
        keys = []
        while name.endswith("]"):
            open_idx = name.rfind("[")
            if open_idx < 0:
                raise PathError("unbalanced brackets in %r" % text)
            keys.insert(0, name[open_idx + 1 : -1])
            name = name[:open_idx]
        if name == "*":
            if keys:
                raise PathError("wildcard segment cannot carry keys: %r" % text)
            steps.append(STAR)
            continue
        if not name:
            raise PathError("missing attribute name in %r" % text)
        if "[" in name or "]" in name:
            raise PathError("unbalanced brackets in %r" % text)
        steps.append(AttrStep(name))
        for key in keys:
            steps.append(ElemStep(key) if key != "*" else STAR)
    return tuple(steps)


def format_path(steps) -> str:
    """Inverse of :func:`parse_path` (canonical textual form)."""
    parts = []
    for step in steps:
        if isinstance(step, AttrStep):
            parts.append("." + step.name if parts else step.name)
        elif isinstance(step, ElemStep):
            if not parts:
                parts.append("*" if step.key == "*" else "[%s]" % step.key)
            else:
                parts.append("[%s]" % step.key)
        else:
            raise PathError("unknown step %r" % (step,))
    return "".join(parts)


def schema_path(steps) -> Tuple:
    """Project an instance path onto its schema path (keys → ``*``)."""
    projected = []
    for step in steps:
        if isinstance(step, ElemStep):
            projected.append(STAR)
        else:
            projected.append(step)
    return tuple(projected)


def resolve_type(root_type: TupleType, steps) -> AttributeType:
    """Resolve a (schema or instance) path against a type tree.

    Returns the :class:`AttributeType` at the end of the path.  Raises
    :class:`PathError` when a step does not fit the structure.
    """
    current: AttributeType = root_type
    for step in steps:
        if isinstance(step, AttrStep):
            if not isinstance(current, TupleType):
                raise PathError(
                    "attribute step %r applied to non-tuple type %r"
                    % (step.name, current)
                )
            try:
                current = current.attribute_type(step.name)
            except Exception:
                raise PathError(
                    "type has no attribute %r (have: %r)"
                    % (step.name, [n for n, _ in current.attributes])
                )
        elif isinstance(step, ElemStep):
            if not isinstance(current, (SetType, ListType)):
                raise PathError(
                    "element step %r applied to non-collection type %r"
                    % (step.key, current)
                )
            current = current.element_type
        else:
            raise PathError("unknown step %r" % (step,))
    return current


def resolve_value(root: TupleValue, root_type: TupleType, steps):
    """Resolve an instance path against a value tree.

    Element steps select set/list members by their key attribute (the
    ``..._id`` attribute of the element tuple type).  Returns the value at
    the end of the path; raises :class:`PathError` when the path does not
    resolve.
    """
    value = root
    current_type: AttributeType = root_type
    for step in steps:
        if isinstance(step, AttrStep):
            if not isinstance(value, TupleValue) or not isinstance(
                current_type, TupleType
            ):
                raise PathError("attribute step %r on non-tuple value" % step.name)
            current_type = resolve_type(current_type, (step,))
            value = value[step.name]
        elif isinstance(step, ElemStep):
            if not isinstance(current_type, (SetType, ListType)):
                raise PathError("element step %r on non-collection" % (step.key,))
            if not isinstance(value, (SetValue, ListValue)):
                raise PathError("element step %r on non-collection value" % (step.key,))
            element_type = current_type.element_type
            if not isinstance(element_type, TupleType) or element_type.key is None:
                raise PathError(
                    "element selection needs a keyed tuple element type, got %r"
                    % (element_type,)
                )
            element = value.find_by_key(element_type.key, step.key)
            if element is None and isinstance(step.key, str):
                # Resource ids stringify keys; retry with the int reading.
                try:
                    element = value.find_by_key(element_type.key, int(step.key))
                except ValueError:
                    element = None
            if element is None:
                raise PathError(
                    "no element with %s=%r" % (element_type.key, step.key)
                )
            current_type = element_type
            value = element
        else:
            raise PathError("unknown step %r" % (step,))
    return value


def iter_schema_paths(root_type: TupleType):
    """Yield every schema path of a type tree, root first (pre-order).

    Yields ``(path, type)`` pairs including the empty path for the root.
    Used by the object-specific lock-graph builder.
    """

    def walk(path, attr_type):
        yield path, attr_type
        if isinstance(attr_type, TupleType):
            for name, child in attr_type.attributes:
                for item in walk(path + (AttrStep(name),), child):
                    yield item
        elif isinstance(attr_type, (SetType, ListType)):
            for item in walk(path + (STAR,), attr_type.element_type):
                yield item

    return walk((), root_type)
