"""Extended NF² data model with references to common data.

This package is the storage substrate beneath the lock technique: schema
types (:mod:`~repro.nf2.types`), instance values
(:mod:`~repro.nf2.values`), path expressions (:mod:`~repro.nf2.paths`),
relation schemas (:mod:`~repro.nf2.schema`) and the database containers
(:mod:`~repro.nf2.database`).
"""

from repro.nf2.database import (
    Database,
    Relation,
    make_list,
    make_set,
    make_tuple,
)
from repro.nf2.index import Index, validate_indexable
from repro.nf2.paths import (
    AttrStep,
    ElemStep,
    STAR,
    format_path,
    iter_schema_paths,
    parse_path,
    resolve_type,
    resolve_value,
    schema_path,
)
from repro.nf2.schema import RelationSchema, check_schema_closure
from repro.nf2.surrogate import ResourceInterner, SurrogateGenerator
from repro.nf2.types import (
    ATOMIC_DOMAINS,
    AtomicType,
    AttributeType,
    ListType,
    RefType,
    SetType,
    TupleType,
    referenced_relations,
    type_depth,
)
from repro.nf2.values import (
    ComplexObject,
    ListValue,
    Reference,
    SetValue,
    TupleValue,
    collect_references,
    value_kind,
)

__all__ = [
    "ATOMIC_DOMAINS",
    "AtomicType",
    "AttributeType",
    "AttrStep",
    "ComplexObject",
    "Database",
    "ElemStep",
    "Index",
    "ListType",
    "ListValue",
    "Reference",
    "RefType",
    "Relation",
    "RelationSchema",
    "SetType",
    "SetValue",
    "STAR",
    "ResourceInterner",
    "SurrogateGenerator",
    "TupleType",
    "TupleValue",
    "check_schema_closure",
    "validate_indexable",
    "collect_references",
    "format_path",
    "iter_schema_paths",
    "make_list",
    "make_set",
    "make_tuple",
    "parse_path",
    "referenced_relations",
    "resolve_type",
    "resolve_value",
    "schema_path",
    "type_depth",
    "value_kind",
]
