"""Instance values of the extended NF² data model.

A complex object is a tree of :class:`TupleValue`, :class:`SetValue`,
:class:`ListValue` and atomic Python values, with :class:`Reference` leaves
pointing at complex objects of *common data* relations (the non-disjoint
case of the paper).

Values deliberately mirror Python's native containers but are distinct
classes: the lock technique needs to know the *structural kind* of every
node (HoLU vs. HeLU vs. BLU, section 4.2), and schema validation needs to
distinguish a set from a list even when both are handed in as iterables.
"""

from __future__ import annotations

import copy
from typing import Iterable, Iterator, Optional

from repro.errors import IntegrityError, PathError


class Reference:
    """A reference to a complex object in a common-data relation.

    Implemented with surrogates (see :mod:`repro.nf2.surrogate`); two
    references are equal iff they name the same relation and surrogate.
    """

    __slots__ = ("relation", "surrogate")

    def __init__(self, relation: str, surrogate: str):
        self.relation = relation
        self.surrogate = surrogate

    def __eq__(self, other):
        return (
            isinstance(other, Reference)
            and self.relation == other.relation
            and self.surrogate == other.surrogate
        )

    def __hash__(self):
        return hash((self.relation, self.surrogate))

    def __repr__(self):
        return "Reference(%r, %r)" % (self.relation, self.surrogate)


class TupleValue:
    """A (complex) tuple: an ordered mapping of attribute name to value."""

    def __init__(self, **attributes):
        self._attributes = dict(attributes)

    @classmethod
    def from_dict(cls, mapping) -> "TupleValue":
        value = cls()
        value._attributes = dict(mapping)
        return value

    def keys(self):
        return self._attributes.keys()

    def items(self):
        return self._attributes.items()

    def values(self):
        return self._attributes.values()

    def __getitem__(self, name):
        try:
            return self._attributes[name]
        except KeyError:
            raise PathError("tuple has no attribute %r" % name)

    def __setitem__(self, name, value):
        self._attributes[name] = value

    def __contains__(self, name):
        return name in self._attributes

    def get(self, name, default=None):
        return self._attributes.get(name, default)

    def __eq__(self, other):
        return isinstance(other, TupleValue) and self._attributes == other._attributes

    def __len__(self):
        return len(self._attributes)

    def __repr__(self):
        inner = ", ".join("%s=%r" % kv for kv in self._attributes.items())
        return "TupleValue(%s)" % inner


class _Collection:
    """Shared behaviour of SetValue and ListValue (homogeneous values)."""

    def __init__(self, elements: Optional[Iterable] = None):
        self._elements = list(elements) if elements is not None else []

    def __iter__(self) -> Iterator:
        return iter(self._elements)

    def __len__(self):
        return len(self._elements)

    def __bool__(self):
        return bool(self._elements)

    def add(self, element):
        self._elements.append(element)

    def remove(self, element):
        try:
            self._elements.remove(element)
        except ValueError:
            raise IntegrityError("element %r not in collection" % (element,))

    def find(self, predicate):
        """Return the first element satisfying ``predicate`` or None."""
        for element in self._elements:
            if predicate(element):
                return element
        return None

    def find_by_key(self, key_attr: str, key_value):
        """Return the tuple element whose ``key_attr`` equals ``key_value``."""
        for element in self._elements:
            if isinstance(element, TupleValue) and element.get(key_attr) == key_value:
                return element
        return None


class SetValue(_Collection):
    """An unordered collection of same-typed elements (a HoLU instance).

    Order of insertion is preserved internally for determinism, but equality
    is order-insensitive — matching set semantics while keeping elements
    that are unhashable containers.
    """

    def __eq__(self, other):
        if not isinstance(other, SetValue):
            return False
        if len(self) != len(other):
            return False
        remaining = list(other._elements)
        for element in self._elements:
            if element in remaining:
                remaining.remove(element)
            else:
                return False
        return not remaining

    def __repr__(self):
        return "SetValue(%r)" % (self._elements,)


class ListValue(_Collection):
    """An ordered collection of same-typed elements (a HoLU instance)."""

    def __eq__(self, other):
        return isinstance(other, ListValue) and self._elements == other._elements

    def __getitem__(self, index):
        return self._elements[index]

    def insert(self, index, element):
        self._elements.insert(index, element)

    def index(self, element):
        return self._elements.index(element)

    def __repr__(self):
        return "ListValue(%r)" % (self._elements,)


class ComplexObject:
    """A complex object: the root tuple of a relation member plus identity.

    Identity is the surrogate assigned at insertion time; ``key`` caches the
    key-attribute value for lookups.  ``root`` is the :class:`TupleValue`
    holding the object's data tree.
    """

    __slots__ = ("relation", "surrogate", "key", "root")

    def __init__(self, relation: str, surrogate: str, key, root: TupleValue):
        self.relation = relation
        self.surrogate = surrogate
        self.key = key
        self.root = root

    def reference(self) -> Reference:
        """Return a Reference pointing at this object."""
        return Reference(self.relation, self.surrogate)

    def snapshot(self) -> "ComplexObject":
        """Deep copy for undo logs and workstation check-out."""
        return ComplexObject(
            self.relation, self.surrogate, self.key, copy.deepcopy(self.root)
        )

    def __repr__(self):
        return "ComplexObject(%r, %r, key=%r)" % (
            self.relation,
            self.surrogate,
            self.key,
        )


def collect_references(value) -> list:
    """Return every :class:`Reference` reachable in ``value``, in tree order.

    This is the scan the paper relies on for implicit downward propagation
    ("this is done by a scan over all the existing references", end of
    section 4.4.2.1).
    """
    found = []
    stack = [value]
    while stack:
        current = stack.pop()
        if isinstance(current, Reference):
            found.append(current)
        elif isinstance(current, TupleValue):
            stack.extend(reversed(list(current.values())))
        elif isinstance(current, _Collection):
            stack.extend(reversed(list(current)))
    return found


def reference_paths(root) -> list:
    """Yield ``(reference, steps)`` pairs locating each reference occurrence.

    ``steps`` is the instance path (AttrStep/ElemStep sequence) of the
    innermost *addressable* node holding the reference: the tuple
    attribute for a directly-held reference, or the containing collection
    for references that are themselves collection elements (reference BLUs
    have no key of their own).  This is what the naive DAG baseline needs
    to lock "all parent nodes" of a shared node (section 3.2.2).
    """
    from repro.nf2.paths import AttrStep, ElemStep

    out = []

    def element_key(element: TupleValue):
        for name in element.keys():
            if name.endswith("_id"):
                return element[name]
        return None

    def walk(node, steps):
        if isinstance(node, Reference):
            out.append((node, steps))
        elif isinstance(node, TupleValue):
            for name, child in node.items():
                walk(child, steps + (AttrStep(name),))
        elif isinstance(node, _Collection):
            for element in node:
                if isinstance(element, Reference):
                    out.append((element, steps))
                elif isinstance(element, TupleValue):
                    key = element_key(element)
                    if key is None:
                        walk(element, steps)
                    else:
                        walk(element, steps + (ElemStep(key),))
                elif isinstance(element, _Collection):
                    walk(element, steps)

    walk(root, ())
    return out


def value_kind(value) -> str:
    """Structural kind of an instance node: tuple / set / list / ref / atomic."""
    if isinstance(value, TupleValue):
        return "tuple"
    if isinstance(value, SetValue):
        return "set"
    if isinstance(value, ListValue):
        return "list"
    if isinstance(value, Reference):
        return "ref"
    return "atomic"
