"""Console entry point for the benchmark harness (``repro-bench``).

Runs the ``benchmarks/`` suite under pytest-benchmark and writes the
machine-readable results (timings plus every ``extra_info`` metric the
experiments attach — reference-scan op counts, simulated throughputs,
ablation ratios) to a JSON file, ``BENCH_1.json`` by default.  The
printed experiment tables go to stdout; pass ``--quiet`` to suppress
them.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from typing import List, Optional


def _default_bench_dir() -> str:
    """The benchmarks directory: next to an installed repo checkout."""
    here = os.path.dirname(os.path.abspath(__file__))
    for candidate in (
        os.path.join(os.path.dirname(os.path.dirname(here)), "benchmarks"),
        os.path.join(os.getcwd(), "benchmarks"),
    ):
        if os.path.isdir(candidate):
            return candidate
    return "benchmarks"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Run the reproduction's benchmark suite.",
    )
    parser.add_argument(
        "--json",
        default="BENCH_1.json",
        help="pytest-benchmark JSON output path (default: BENCH_1.json)",
    )
    parser.add_argument(
        "--bench-dir",
        default=None,
        help="benchmarks directory (default: auto-detected)",
    )
    parser.add_argument(
        "-k",
        dest="keyword",
        default=None,
        help="only run benchmarks matching this pytest -k expression",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the printed experiment tables",
    )
    args = parser.parse_args(argv)

    bench_dir = args.bench_dir or _default_bench_dir()
    if not os.path.isdir(bench_dir):
        print("benchmarks directory not found: %s" % bench_dir, file=sys.stderr)
        return 2

    command = [
        sys.executable,
        "-m",
        "pytest",
        bench_dir,
        "--benchmark-json",
        args.json,
        "-q",
    ]
    if not args.quiet:
        command.append("-s")
    if args.keyword:
        command.extend(["-k", args.keyword])

    env = dict(os.environ)
    # make the src layout importable when running from a checkout
    src = os.path.join(os.path.dirname(bench_dir), "src")
    if os.path.isdir(src):
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src, env.get("PYTHONPATH")) if p
        )
    result = subprocess.run(command, env=env, cwd=os.path.dirname(bench_dir) or ".")
    if result.returncode == 0:
        json_path = os.path.join(os.path.dirname(bench_dir) or ".", args.json)
        if not os.path.isfile(json_path):
            json_path = args.json
        attach_ablation_deltas(json_path)
        print("benchmark results written to %s" % args.json)
    return result.returncode


def attach_ablation_deltas(json_path: str) -> dict:
    """Hoist every speedup/ratio metric into a top-level summary.

    The experiments attach their ablation comparisons (``*_speedup``,
    ``*_ratio``) to ``benchmark.extra_info``, which pytest-benchmark
    buries one entry per benchmark.  Re-reading raw timings to recover
    them is lossy — the ratios were computed against best-of-N runs the
    JSON does not keep — so the runner lifts them verbatim into an
    ``ablation_deltas`` section keyed by benchmark name.  Returns the
    section (empty when no benchmark reported a delta).
    """
    try:
        with open(json_path) as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return {}
    deltas: dict = {}
    for bench in payload.get("benchmarks", ()):
        picked = {
            key: value
            for key, value in (bench.get("extra_info") or {}).items()
            if key.endswith(("speedup", "ratio"))
        }
        if picked:
            deltas[bench.get("name", "?")] = picked
    payload["ablation_deltas"] = deltas
    # no indent: the raw per-round sample arrays explode under pretty-
    # printing (tens of MB for the microbenchmarks)
    with open(json_path, "w") as handle:
        json.dump(payload, handle, sort_keys=True)
        handle.write("\n")
    return deltas


if __name__ == "__main__":
    sys.exit(main())
