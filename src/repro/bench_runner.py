"""Console entry point for the benchmark harness (``repro-bench``).

Runs the ``benchmarks/`` suite under pytest-benchmark and writes the
machine-readable results (timings plus every ``extra_info`` metric the
experiments attach — reference-scan op counts, simulated throughputs,
ablation ratios) to a JSON file, ``BENCH_1.json`` by default.  The
printed experiment tables go to stdout; pass ``--quiet`` to suppress
them.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from typing import List, Optional


def _default_bench_dir() -> str:
    """The benchmarks directory: next to an installed repo checkout."""
    here = os.path.dirname(os.path.abspath(__file__))
    for candidate in (
        os.path.join(os.path.dirname(os.path.dirname(here)), "benchmarks"),
        os.path.join(os.getcwd(), "benchmarks"),
    ):
        if os.path.isdir(candidate):
            return candidate
    return "benchmarks"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Run the reproduction's benchmark suite.",
    )
    parser.add_argument(
        "--json",
        default="BENCH_1.json",
        help="pytest-benchmark JSON output path (default: BENCH_1.json)",
    )
    parser.add_argument(
        "--bench-dir",
        default=None,
        help="benchmarks directory (default: auto-detected)",
    )
    parser.add_argument(
        "-k",
        dest="keyword",
        default=None,
        help="only run benchmarks matching this pytest -k expression",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the printed experiment tables",
    )
    args = parser.parse_args(argv)

    bench_dir = args.bench_dir or _default_bench_dir()
    if not os.path.isdir(bench_dir):
        print("benchmarks directory not found: %s" % bench_dir, file=sys.stderr)
        return 2

    command = [
        sys.executable,
        "-m",
        "pytest",
        bench_dir,
        "--benchmark-json",
        args.json,
        "-q",
    ]
    if not args.quiet:
        command.append("-s")
    if args.keyword:
        command.extend(["-k", args.keyword])

    env = dict(os.environ)
    # make the src layout importable when running from a checkout
    src = os.path.join(os.path.dirname(bench_dir), "src")
    if os.path.isdir(src):
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src, env.get("PYTHONPATH")) if p
        )
    result = subprocess.run(command, env=env, cwd=os.path.dirname(bench_dir) or ".")
    if result.returncode == 0:
        json_path = os.path.join(os.path.dirname(bench_dir) or ".", args.json)
        if not os.path.isfile(json_path):
            json_path = args.json
        attach_ablation_deltas(json_path)
        refresh_commit_info(json_path, os.path.dirname(bench_dir) or ".")
        print("benchmark results written to %s" % args.json)
    return result.returncode


def git_is_dirty(repo_dir: str) -> Optional[bool]:
    """Whether the checkout has modified *tracked* files.

    pytest-benchmark answers this with ``git describe --dirty``, which
    reads cached stat info without refreshing it — on a freshly
    materialised checkout (clone, docker copy, CI cache restore) the
    stale index reports phantom modifications and every benchmark run
    records ``commit_info.dirty: true`` even though ``git diff`` is
    empty.  ``git status --porcelain`` refreshes the index first, so it
    is authoritative; ``-uno`` ignores untracked files (the benchmark
    JSON itself, caches) to match what "dirty" is meant to capture.
    Returns None when git is unavailable or the directory is not a
    checkout.
    """
    try:
        probe = subprocess.run(
            ["git", "status", "--porcelain", "-uno"],
            cwd=repo_dir,
            capture_output=True,
            text=True,
        )
    except OSError:
        return None
    if probe.returncode != 0:
        return None
    return bool(probe.stdout.strip())


def refresh_commit_info(json_path: str, repo_dir: str) -> None:
    """Overwrite ``commit_info.dirty`` with the index-refreshed answer."""
    dirty = git_is_dirty(repo_dir)
    if dirty is None:
        return
    try:
        with open(json_path) as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return
    commit_info = payload.get("commit_info")
    if not isinstance(commit_info, dict) or commit_info.get("dirty") == dirty:
        return
    commit_info["dirty"] = dirty
    with open(json_path, "w") as handle:
        json.dump(payload, handle, sort_keys=True)
        handle.write("\n")


def attach_ablation_deltas(json_path: str) -> dict:
    """Hoist every speedup/ratio metric into a top-level summary.

    The experiments attach their ablation comparisons (``*_speedup``,
    ``*_ratio``) to ``benchmark.extra_info``, which pytest-benchmark
    buries one entry per benchmark.  Re-reading raw timings to recover
    them is lossy — the ratios were computed against best-of-N runs the
    JSON does not keep — so the runner lifts them verbatim into an
    ``ablation_deltas`` section keyed by benchmark name.  Returns the
    section (empty when no benchmark reported a delta).
    """
    try:
        with open(json_path) as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return {}
    deltas: dict = {}
    for bench in payload.get("benchmarks", ()):
        picked = {
            key: value
            for key, value in (bench.get("extra_info") or {}).items()
            if key.endswith(("speedup", "ratio"))
        }
        if picked:
            deltas[bench.get("name", "?")] = picked
    payload["ablation_deltas"] = deltas
    # no indent: the raw per-round sample arrays explode under pretty-
    # printing (tens of MB for the microbenchmarks)
    with open(json_path, "w") as handle:
        json.dump(payload, handle, sort_keys=True)
        handle.write("\n")
    return deltas


if __name__ == "__main__":
    sys.exit(main())
