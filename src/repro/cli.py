"""Command-line interface: inspect graphs, explain plans, run experiments.

    python -m repro graph cells                  render an object-specific lock graph
    python -m repro figure7                      reproduce Figure 7's lock placement
    python -m repro explain robots[r1] --mode X  show a lock plan step by step
    python -m repro compare                      simulated protocol comparison table
    python -m repro sweep --axis work_time       one axis of the section-5 claim

All commands operate on the paper's cells/effectors database; ``--cells``,
``--robots``, ``--effectors`` size a synthetic instance instead of the
exact Figure 6/7 one.
"""

from __future__ import annotations

import argparse
import sys

import repro
from repro.graphs.units import component_resource, object_resource
from repro.locking.modes import LockMode, S, X
from repro.nf2 import parse_path
from repro.protocol import (
    HerrmannProtocol,
    SystemRRelationProtocol,
    SystemRTupleProtocol,
    XSQLProtocol,
)
from repro.sim import Simulator, WorkloadSpec, submit_workload
from repro.workloads import build_cells_database

PROTOCOLS = (
    HerrmannProtocol,
    SystemRTupleProtocol,
    SystemRRelationProtocol,
    XSQLProtocol,
)


def _build(args):
    if args.cells is None:
        return build_cells_database(figure7=True)
    return build_cells_database(
        n_cells=args.cells,
        n_robots=args.robots,
        n_effectors=args.effectors,
        seed=args.seed,
    )


def cmd_graph(args):
    _, catalog = _build(args)
    if args.relation not in catalog.relation_names():
        print(
            "unknown relation %r (have: %s)"
            % (args.relation, ", ".join(catalog.relation_names())),
            file=sys.stderr,
        )
        return 1
    print(catalog.object_graph(args.relation).render())
    return 0


def cmd_figure7(args):
    database, catalog = build_cells_database(figure7=True)
    stack = repro.make_stack(database, catalog)
    stack.authorization.grant_modify("engineer2", "cells")
    stack.authorization.grant_modify("engineer3", "cells")
    cell = object_resource(catalog, "cells", "c1")
    for name, principal, robot in (("Q2", "engineer2", "r1"), ("Q3", "engineer3", "r2")):
        txn = stack.txns.begin(principal=principal, name=name)
        stack.protocol.request(
            txn, component_resource(cell, parse_path("robots[%s]" % robot)), X
        )
        print("%s holds:" % name)
        for resource, mode in sorted(stack.manager.locks_of(txn).items(), key=repr):
            print("   %-4s %s" % (mode, "/".join(resource)))
        print()
    print("both granted concurrently (they share effector e2 in S mode)")
    return 0


def cmd_explain(args):
    database, catalog = _build(args)
    stack = repro.make_stack(database, catalog)
    if args.modify:
        stack.authorization.grant_modify("cli", args.modify)
    txn = stack.txns.begin(principal="cli" if args.modify else None)
    target = object_resource(catalog, args.relation, args.key)
    if args.path:
        target = component_resource(target, parse_path(args.path))
    mode = LockMode(args.mode)
    for line in stack.protocol.explain(txn, target, mode):
        print(line)
    return 0


def cmd_trace(args):
    """Narrate the lock-manager activity of Q2/Q3 (section 4.4.2.2 style)."""
    from repro.locking.trace import LockTrace

    database, catalog = build_cells_database(figure7=True)
    stack = repro.make_stack(database, catalog)
    stack.authorization.grant_modify("engineer2", "cells")
    stack.authorization.grant_modify("engineer3", "cells")
    trace = LockTrace.attach(stack.manager)
    cell = object_resource(catalog, "cells", "c1")
    t2 = stack.txns.begin(principal="engineer2", name="Q2")
    t3 = stack.txns.begin(principal="engineer3", name="Q3")
    stack.protocol.request(
        t2, component_resource(cell, parse_path("robots[r1]")), X
    )
    stack.protocol.request(
        t3, component_resource(cell, parse_path("robots[r2]")), X
    )
    stack.txns.commit(t2)
    stack.txns.commit(t3)
    trace.detach()
    print(trace.render())
    return 0


def cmd_compare(args):
    spec = WorkloadSpec(
        n_transactions=args.transactions,
        update_fraction=args.update_fraction,
        whole_object_fraction=0.15,
        library_update_fraction=0.05,
        work_time=args.work_time,
        mean_interarrival=0.4,
        seed=args.seed,
    )
    header = "%-18s %10s %10s %8s %8s %8s" % (
        "protocol", "throughput", "mean resp", "waits", "dlocks", "locks",
    )
    print(header)
    print("-" * len(header))
    for protocol_cls in PROTOCOLS:
        database, catalog = _build(args)
        stack = repro.make_stack(
            database,
            catalog,
            protocol_cls=protocol_cls,
            use_plan_cache=args.plan_cache,
            use_batched_acquire=args.batched_acquire,
            use_dense_path=args.dense_path,
        )
        simulator = Simulator(stack.protocol, lock_cost=0.02, scan_item_cost=0.01)
        submit_workload(simulator, catalog, spec, authorization=stack.authorization)
        metrics = simulator.run()
        print(
            "%-18s %10.3f %10.2f %8.1f %8d %8d"
            % (
                protocol_cls.name,
                metrics.throughput,
                metrics.mean_response_time,
                metrics.total_wait_time,
                metrics.deadlocks,
                metrics.locks_requested,
            )
        )
    return 0


def cmd_sweep(args):
    settings = {
        "work_time": (0.5, 2.0, 8.0),
        "update_fraction": (0.2, 0.6, 1.0),
        "think_time": (0.0, 10.0, 40.0),
    }[args.axis]
    print("%-14s %-14s" % (args.axis, "herrmann/xsql"))
    for value in settings:
        spec_kwargs = dict(
            n_transactions=args.transactions,
            update_fraction=args.update_fraction,
            whole_object_fraction=0.1,
            work_time=args.work_time,
            mean_interarrival=0.4,
            seed=args.seed,
        )
        spec_kwargs[args.axis] = value
        throughputs = {}
        for protocol_cls in (HerrmannProtocol, XSQLProtocol):
            database, catalog = _build(args)
            stack = repro.make_stack(
                database,
                catalog,
                protocol_cls=protocol_cls,
                use_plan_cache=args.plan_cache,
                use_batched_acquire=args.batched_acquire,
                use_dense_path=args.dense_path,
            )
            simulator = Simulator(stack.protocol, lock_cost=0.02)
            submit_workload(
                simulator, catalog, WorkloadSpec(**spec_kwargs),
                authorization=stack.authorization,
            )
            throughputs[protocol_cls.name] = simulator.run().throughput
        print(
            "%-14s %-14.2f"
            % (value, throughputs["herrmann"] / max(throughputs["xsql"], 1e-9))
        )
    return 0


def cmd_check(args):
    """Forward to the ``repro-check`` CLI (schedule-exploring oracle)."""
    from repro.check.cli import main as check_main

    return check_main(args.check_args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Lock technique for disjoint and non-disjoint complex "
        "objects (Herrmann et al., EDBT 1990) — reproduction CLI",
    )
    parser.add_argument("--cells", type=int, default=None,
                        help="synthetic database: number of cells (default: Figure 7 instance)")
    parser.add_argument("--robots", type=int, default=3)
    parser.add_argument("--effectors", type=int, default=5)
    parser.add_argument("--seed", type=int, default=7)
    commands = parser.add_subparsers(dest="command", required=True)

    graph = commands.add_parser("graph", help="render an object-specific lock graph")
    graph.add_argument("relation")
    graph.set_defaults(func=cmd_graph)

    fig7 = commands.add_parser("figure7", help="reproduce Figure 7")
    fig7.set_defaults(func=cmd_figure7)

    explain = commands.add_parser("explain", help="show a lock plan")
    explain.add_argument("path", nargs="?", default="",
                         help="component path, e.g. robots[r1]")
    explain.add_argument("--relation", default="cells")
    explain.add_argument("--key", default="c1")
    explain.add_argument("--mode", default="S", choices=[m.value for m in LockMode])
    explain.add_argument("--modify", default=None,
                         help="grant the CLI principal modify rights on a relation")
    explain.set_defaults(func=cmd_explain)

    trace = commands.add_parser(
        "trace", help="narrate the lock activity of Q2 and Q3"
    )
    trace.set_defaults(func=cmd_trace)

    def ablations(sub):
        sub.add_argument(
            "--plan-cache", dest="plan_cache", action="store_true",
            help="enable the compiled lock-plan cache",
        )
        sub.add_argument(
            "--batched-acquire", dest="batched_acquire", action="store_true",
            help="acquire each plan's locks as one batched group request",
        )
        sub.add_argument(
            "--dense-path", dest="dense_path", action="store_true",
            help="run the dense-ID fast path (interned resources, "
            "flat-array plans, pooled lock table)",
        )

    compare = commands.add_parser("compare", help="simulated protocol comparison")
    compare.add_argument("--transactions", type=int, default=60)
    compare.add_argument("--update-fraction", dest="update_fraction",
                         type=float, default=0.5)
    compare.add_argument("--work-time", dest="work_time", type=float, default=2.0)
    ablations(compare)
    compare.set_defaults(func=cmd_compare, cells=3)

    sweep = commands.add_parser("sweep", help="one axis of the section-5 claim")
    sweep.add_argument("--axis", default="work_time",
                       choices=("work_time", "update_fraction", "think_time"))
    sweep.add_argument("--transactions", type=int, default=40)
    sweep.add_argument("--update-fraction", dest="update_fraction",
                       type=float, default=0.6)
    sweep.add_argument("--work-time", dest="work_time", type=float, default=2.0)
    ablations(sweep)
    sweep.set_defaults(func=cmd_sweep, cells=2)

    check = commands.add_parser(
        "check",
        help="schedule exploration and differential oracle (repro-check)",
    )
    check.add_argument("check_args", nargs=argparse.REMAINDER,
                       help="arguments forwarded to repro-check")
    check.set_defaults(func=cmd_check)

    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
